package sensitivity

import (
	"testing"

	"cpsrisk/internal/qual"
	"cpsrisk/internal/risk"
)

// riskOutput evaluates the O-RA matrix over the LM/LEF assignment.
func riskOutput(a Assignment) qual.Level {
	return risk.ORARisk(a["LM"], a["LEF"])
}

// TestPaperSectionVAClaim reproduces the paper's §V-A worked example
// verbatim: with LEF = L fixed, uncertainty LM ∈ {VL, L} leaves the risk
// insensitive (VL either way), while LM ranging L..VH makes it sensitive.
func TestPaperSectionVAClaim(t *testing.T) {
	base := Assignment{"LEF": qual.Low, "LM": qual.Low}

	narrow, err := Analyze(base, []Factor{
		{Name: "LM", Levels: []qual.Level{qual.VeryLow, qual.Low}},
	}, riskOutput)
	if err != nil {
		t.Fatal(err)
	}
	if narrow[0].Sensitive {
		t.Errorf("LM in {VL,L} at LEF=L must be insensitive: %+v", narrow[0])
	}
	if len(narrow[0].Outputs) != 1 || narrow[0].Outputs[0] != qual.VeryLow {
		t.Errorf("risk must remain VL: %+v", narrow[0])
	}

	wide, err := Analyze(base, []Factor{
		{Name: "LM", Levels: []qual.Level{qual.Low, qual.Medium, qual.High, qual.VeryHigh}},
	}, riskOutput)
	if err != nil {
		t.Fatal(err)
	}
	if !wide[0].Sensitive {
		t.Errorf("LM in L..VH at LEF=L must be sensitive: %+v", wide[0])
	}
}

func TestAnalyzeMultipleFactors(t *testing.T) {
	base := Assignment{"LM": qual.Medium, "LEF": qual.Medium}
	results, err := Analyze(base, []Factor{
		{Name: "LM", Levels: []qual.Level{qual.Low, qual.Medium, qual.High}},
		{Name: "LEF", Levels: []qual.Level{qual.Medium}},
	}, riskOutput)
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Sensitive || results[0].Spread != 2 {
		t.Errorf("LM result = %+v", results[0])
	}
	if results[1].Sensitive || results[1].Spread != 0 {
		t.Errorf("single-level factor must be insensitive: %+v", results[1])
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(Assignment{}, []Factor{{Name: "x"}}, riskOutput); err == nil {
		t.Error("empty level range must fail")
	}
	if _, err := Analyze(Assignment{}, []Factor{{Levels: []qual.Level{qual.Low}}}, riskOutput); err == nil {
		t.Error("empty name must fail")
	}
}

func TestAnalyzeDoesNotMutateBase(t *testing.T) {
	base := Assignment{"LM": qual.Medium, "LEF": qual.Medium}
	_, err := Analyze(base, []Factor{
		{Name: "LM", Levels: []qual.Level{qual.VeryHigh}},
	}, riskOutput)
	if err != nil {
		t.Fatal(err)
	}
	if base["LM"] != qual.Medium {
		t.Error("Analyze mutated the base assignment")
	}
}

func TestTornadoOrdering(t *testing.T) {
	results := []FactorResult{
		{Name: "b", Spread: 1},
		{Name: "a", Spread: 1},
		{Name: "c", Spread: 3},
	}
	ranked := Tornado(results)
	if ranked[0].Name != "c" || ranked[1].Name != "a" || ranked[2].Name != "b" {
		t.Errorf("tornado = %v", ranked)
	}
	if results[0].Name != "b" {
		t.Error("Tornado mutated input")
	}
}

func TestJointSolutionSpace(t *testing.T) {
	base := Assignment{}
	res, err := Joint(base, []Factor{
		{Name: "LM", Levels: []qual.Level{qual.Low, qual.High}},
		{Name: "LEF", Levels: []qual.Level{qual.Low, qual.Medium, qual.VeryHigh}},
	}, riskOutput)
	if err != nil {
		t.Fatal(err)
	}
	if res.Combinations != 6 {
		t.Errorf("combinations = %d", res.Combinations)
	}
	// Reachable risks: (L,L)=VL (L,M)=L (L,VH)=H (H,L)=M (H,M)=H (H,VH)=VH.
	want := []qual.Level{qual.VeryLow, qual.Low, qual.Medium, qual.High, qual.VeryHigh}
	if len(res.Outputs) != len(want) {
		t.Fatalf("outputs = %v", res.Outputs)
	}
	for i := range want {
		if res.Outputs[i] != want[i] {
			t.Fatalf("outputs = %v, want %v", res.Outputs, want)
		}
	}
	if res.BestCase != qual.VeryLow || res.WorstCase != qual.VeryHigh {
		t.Errorf("best=%v worst=%v", res.BestCase, res.WorstCase)
	}
}

func TestJointRestoresBase(t *testing.T) {
	base := Assignment{"LM": qual.Medium}
	if _, err := Joint(base, []Factor{
		{Name: "LM", Levels: []qual.Level{qual.VeryHigh}},
		{Name: "LEF", Levels: []qual.Level{qual.Low}},
	}, riskOutput); err != nil {
		t.Fatal(err)
	}
	if base["LM"] != qual.Medium {
		t.Error("Joint mutated base")
	}
}

func BenchmarkJointFiveFactors(b *testing.B) {
	all := []qual.Level{qual.VeryLow, qual.Low, qual.Medium, qual.High, qual.VeryHigh}
	factors := []Factor{
		{Name: "cf", Levels: all},
		{Name: "pa", Levels: all},
		{Name: "tc", Levels: all},
		{Name: "rs", Levels: all},
		{Name: "pl", Levels: all},
	}
	out := func(a Assignment) qual.Level {
		return risk.Derive(risk.Attributes{
			ContactFrequency:    a["cf"],
			ProbabilityOfAction: a["pa"],
			ThreatCapability:    a["tc"],
			ResistanceStrength:  a["rs"],
			PrimaryLoss:         a["pl"],
		}).Risk
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Joint(Assignment{}, factors, out); err != nil {
			b.Fatal(err)
		}
	}
}
