// Package optimize implements the cost-benefit estimation and optimization
// step (paper §IV-D): selecting mitigation sets that trade implementation
// cost against residual loss, under an optional budget constraint, with an
// exact branch-and-bound optimizer, a greedy multi-phase planner (the
// paper's staged security-consolidation strategy for SMEs), and an ASP
// encoding for cross-checking optima through the embedded formal method.
package optimize

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cpsrisk/internal/logic"
	"cpsrisk/internal/mitigation"
)

// Option is a selectable mitigation with its total per-horizon cost
// (implementation plus maintenance).
type Option struct {
	ID   string
	Cost int
}

// Problem is a mitigation-selection instance.
type Problem struct {
	Options   []Option
	Scenarios []mitigation.ScenarioLoss
	// Budget caps the summed mitigation cost; negative means unlimited.
	Budget int
}

// Plan is a selection with its evaluation.
type Plan struct {
	// Selected mitigation IDs, sorted.
	Selected []string
	// Cost is the summed mitigation cost.
	Cost int
	// ResidualLoss sums the losses of scenarios left unblocked.
	ResidualLoss int
	// Total = Cost + ResidualLoss (the minimized objective).
	Total int
	// Blocked lists the IDs of blocked scenarios, sorted.
	Blocked []string
}

// Evaluate scores a selection against the problem.
func (p *Problem) Evaluate(selected map[string]bool) Plan {
	plan := Plan{}
	for _, o := range p.Options {
		if selected[o.ID] {
			plan.Selected = append(plan.Selected, o.ID)
			plan.Cost += o.Cost
		}
	}
	sort.Strings(plan.Selected)
	for _, s := range p.Scenarios {
		if s.BlockedBy(selected) {
			plan.Blocked = append(plan.Blocked, s.ID)
		} else {
			plan.ResidualLoss += s.Loss
		}
	}
	sort.Strings(plan.Blocked)
	plan.Total = plan.Cost + plan.ResidualLoss
	return plan
}

func (p *Problem) validate() error {
	seen := map[string]bool{}
	for _, o := range p.Options {
		if o.ID == "" {
			return fmt.Errorf("optimize: option with empty ID")
		}
		if seen[o.ID] {
			return fmt.Errorf("optimize: duplicate option %q", o.ID)
		}
		seen[o.ID] = true
		if o.Cost < 0 {
			return fmt.Errorf("optimize: option %q has negative cost", o.ID)
		}
	}
	for _, s := range p.Scenarios {
		if s.Loss < 0 {
			return fmt.Errorf("optimize: scenario %q has negative loss", s.ID)
		}
	}
	return nil
}

// Optimal finds a selection minimizing Cost + ResidualLoss subject to the
// budget, by branch and bound over the option set (exact; exponential in
// len(Options), fine for realistic mitigation catalogs). Ties prefer the
// cheaper, then lexicographically smaller selection, making the result
// deterministic.
func (p *Problem) Optimal() (Plan, error) {
	if err := p.validate(); err != nil {
		return Plan{}, err
	}
	best := p.Evaluate(map[string]bool{}) // baseline: buy nothing
	if p.Budget >= 0 && best.Cost > p.Budget {
		return Plan{}, fmt.Errorf("optimize: empty selection exceeds budget")
	}
	selected := map[string]bool{}
	var rec func(i, cost int)
	rec = func(i, cost int) {
		if p.Budget >= 0 && cost > p.Budget {
			return
		}
		if cost >= best.Total {
			// Even with zero residual loss this branch cannot win.
			return
		}
		if i == len(p.Options) {
			plan := p.Evaluate(selected)
			if better(plan, best) {
				best = plan
			}
			return
		}
		// Branch: include option i first (tends to find good bounds early
		// for blocking-heavy instances), then exclude.
		o := p.Options[i]
		selected[o.ID] = true
		rec(i+1, cost+o.Cost)
		delete(selected, o.ID)
		rec(i+1, cost)
	}
	rec(0, 0)
	return best, nil
}

func better(a, b Plan) bool {
	if a.Total != b.Total {
		return a.Total < b.Total
	}
	if a.Cost != b.Cost {
		return a.Cost < b.Cost
	}
	return fmt.Sprint(a.Selected) < fmt.Sprint(b.Selected)
}

// Phase is one step of the greedy multi-phase plan.
type Phase struct {
	MitigationID string
	Cost         int
	// LossReduction is the marginal residual-loss reduction the phase
	// achieves at the moment it is applied.
	LossReduction int
}

// MultiPhase builds the paper's staged consolidation strategy: repeatedly
// deploy the mitigation move with the best marginal loss-reduction per
// cost that still fits the remaining budget, until nothing improves. A
// move is a single mitigation or a minimal blocking bundle — blocking an
// attack scenario can require covering several sources at once (e.g. user
// training AND endpoint security for the spearphishing + drive-by pair),
// where no single purchase reduces loss. It returns the ordered phases
// ("first deal with the most potential and severe risk and later focus on
// the other ones") and the final plan. Bundle phases report each member
// mitigation as its own Phase entry sharing the bundle's reduction split
// on the first member.
func (p *Problem) MultiPhase() ([]Phase, Plan, error) {
	if err := p.validate(); err != nil {
		return nil, Plan{}, err
	}
	costOf := map[string]int{}
	for _, o := range p.Options {
		costOf[o.ID] = o.Cost
	}
	selected := map[string]bool{}
	remaining := p.Budget
	var phases []Phase
	current := p.Evaluate(selected)
	for {
		moves := p.candidateMoves(selected, costOf)
		bestIdx := -1
		var bestGain float64
		var bestReduction, bestCost int
		for i, move := range moves {
			cost := 0
			for _, id := range move {
				cost += costOf[id]
			}
			if p.Budget >= 0 && cost > remaining {
				continue
			}
			for _, id := range move {
				selected[id] = true
			}
			trial := p.Evaluate(selected)
			for _, id := range move {
				delete(selected, id)
			}
			reduction := current.ResidualLoss - trial.ResidualLoss
			if reduction <= 0 {
				continue
			}
			gain := float64(reduction) / math.Max(float64(cost), 0.5)
			if bestIdx < 0 || gain > bestGain ||
				(gain == bestGain && moveKey(move) < moveKey(moves[bestIdx])) {
				bestGain = gain
				bestIdx = i
				bestReduction = reduction
				bestCost = cost
			}
		}
		if bestIdx < 0 {
			break
		}
		move := moves[bestIdx]
		for mi, id := range move {
			selected[id] = true
			reduction := 0
			if mi == 0 {
				reduction = bestReduction
			}
			phases = append(phases, Phase{
				MitigationID:  id,
				Cost:          costOf[id],
				LossReduction: reduction,
			})
		}
		if p.Budget >= 0 {
			remaining -= bestCost
		}
		current = p.Evaluate(selected)
	}
	return phases, current, nil
}

func moveKey(move []string) string { return strings.Join(move, "+") }

// candidateMoves enumerates greedy moves: every unselected single
// mitigation, plus per unblocked scenario the minimal source-covering
// bundles (one blocker per source of one activation), restricted to known
// options and deduplicated.
func (p *Problem) candidateMoves(selected map[string]bool, costOf map[string]int) [][]string {
	var moves [][]string
	seen := map[string]bool{}
	add := func(move []string) {
		filtered := make([]string, 0, len(move))
		for _, id := range move {
			if _, known := costOf[id]; known && !selected[id] {
				filtered = append(filtered, id)
			}
		}
		if len(filtered) == 0 {
			return
		}
		sort.Strings(filtered)
		key := moveKey(filtered)
		if !seen[key] {
			seen[key] = true
			moves = append(moves, filtered)
		}
	}
	for _, o := range p.Options {
		add([]string{o.ID})
	}
	for _, s := range p.Scenarios {
		if s.BlockedBy(selected) {
			continue
		}
		for _, sources := range s.Activations {
			if len(sources) == 0 {
				continue
			}
			bundles := [][]string{{}}
			feasible := true
			for _, blockers := range sources {
				if len(blockers) == 0 {
					feasible = false
					break
				}
				var grown [][]string
				for _, b := range bundles {
					for _, m := range blockers {
						next := append(append([]string(nil), b...), m)
						grown = append(grown, next)
					}
					if len(grown) > 64 {
						break // cap combinatorial growth; singles still apply
					}
				}
				bundles = grown
			}
			if !feasible {
				continue
			}
			for _, b := range bundles {
				add(b)
			}
		}
	}
	return moves
}

// EncodeASP renders the selection problem as an ASP optimization program:
//
//	option(M). cost(M, C).
//	{ select(M) : option(M) }.
//	:- budget(B), ... (budget handled via weight bound constraint)
//	blocked(S) :- ... per-scenario blocking structure
//	#minimize { C,m(M) : select(M), cost(M,C) ; L,s(S) : not blocked(S), loss(S,L) }.
//
// Used to cross-check the native optimizer through the embedded formal
// method. Budgets are encoded by enumerating... a budget constraint needs
// a weight aggregate; instead the encoding is exact for unlimited budgets
// and callers cross-check budgeted instances natively.
func (p *Problem) EncodeASP() (*logic.Program, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	prog := &logic.Program{}
	sym := logic.Sym
	for _, o := range p.Options {
		prog.AddFact(logic.A("option", sym(o.ID)))
		prog.AddFact(logic.A("cost", sym(o.ID), logic.Num(o.Cost)))
	}
	prog.AddRule(logic.ChoiceRule(logic.Unbounded, logic.Unbounded, []logic.ChoiceElem{{
		Atom: logic.A("select", logic.Var("M")),
		Cond: []logic.Literal{logic.Pos(logic.A("option", logic.Var("M")))},
	}}))
	for _, s := range p.Scenarios {
		prog.AddFact(logic.A("scenario", sym(s.ID)))
		prog.AddFact(logic.A("loss", sym(s.ID), logic.Num(s.Loss)))
		// blocked(S) :- actBlocked(S, i) for some activation i whose
		// sources are all covered.
		for ai, sources := range s.Activations {
			if len(sources) == 0 {
				continue
			}
			actAtom := logic.A("act_blocked", sym(s.ID), logic.Num(ai))
			body := make([]logic.BodyElem, 0, len(sources))
			ok := true
			for si, blockers := range sources {
				if len(blockers) == 0 {
					ok = false
					break
				}
				srcAtom := logic.A("src_blocked", sym(s.ID), logic.Num(ai), logic.Num(si))
				for _, m := range blockers {
					prog.AddRule(logic.NormalRule(srcAtom, logic.Pos(logic.A("select", sym(m)))))
				}
				body = append(body, logic.Pos(srcAtom))
			}
			if !ok {
				continue
			}
			prog.AddRule(logic.NormalRule(actAtom, body...))
			prog.AddRule(logic.NormalRule(logic.A("blocked", sym(s.ID)),
				logic.Pos(actAtom)))
		}
	}
	min, err := logic.Parse(`
		residual(S, L) :- scenario(S), loss(S, L), not blocked(S).
		#minimize { C,m(M) : select(M), cost(M, C) }.
		#minimize { L,s(S) : residual(S, L) }.
	`)
	if err != nil {
		return nil, err
	}
	prog.Extend(min)
	return prog, nil
}
