.PHONY: check test build vet fuzz bench

# check is the canonical verification target: vet + build + race tests +
# short fuzz runs. Set FUZZTIME to change the per-target fuzz duration.
check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

# bench runs the perf-tracked suite (S1-S3, Fig. 1) and files the numbers
# into BENCH_PR2.json. Set BENCH_LABEL/BENCHTIME to override defaults.
bench:
	./scripts/bench.sh

fuzz:
	go test -run='^$$' -fuzz=FuzzParse -fuzztime=$${FUZZTIME:-5s} ./internal/logic
	go test -run='^$$' -fuzz=FuzzParseFormula -fuzztime=$${FUZZTIME:-5s} ./internal/temporal
	go test -run='^$$' -fuzz=FuzzReadJSON -fuzztime=$${FUZZTIME:-5s} ./internal/sysmodel
