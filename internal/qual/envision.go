package qual

import "sort"

// Envisionment is the qualitative state graph of a single quantity: every
// state reachable from the initial states under the continuity-respecting
// successor relation. It is the classic "envisioning" of qualitative
// process theory (paper refs [3][6]) — the exhaustive behaviour summary a
// preliminary analysis explores instead of numeric simulation.
type Envisionment struct {
	scale *Scale
	succ  map[State][]State
	init  []State
}

// Envision computes the reachable qualitative state graph from the
// initial states over the scale.
func Envision(s *Scale, init []State) *Envisionment {
	e := &Envisionment{scale: s, succ: map[State][]State{}, init: append([]State(nil), init...)}
	queue := append([]State(nil), init...)
	seen := map[State]bool{}
	for _, st := range init {
		seen[st] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		succs := cur.Successors(s)
		e.succ[cur] = succs
		for _, nxt := range succs {
			if !seen[nxt] {
				seen[nxt] = true
				queue = append(queue, nxt)
			}
		}
	}
	return e
}

// States returns every reachable state, sorted by magnitude then trend.
func (e *Envisionment) States() []State {
	out := make([]State, 0, len(e.succ))
	for st := range e.succ {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Magnitude != out[j].Magnitude {
			return out[i].Magnitude < out[j].Magnitude
		}
		return out[i].Trend < out[j].Trend
	})
	return out
}

// Successors returns the successor states of st (nil if unreachable).
func (e *Envisionment) Successors(st State) []State {
	return append([]State(nil), e.succ[st]...)
}

// Reachable reports whether any state with the given magnitude is
// reachable — the qualitative "can the level reach overflow?" question.
func (e *Envisionment) Reachable(magnitude Level) bool {
	for st := range e.succ {
		if st.Magnitude == magnitude {
			return true
		}
	}
	return false
}

// PathTo returns a shortest qualitative behaviour (state sequence) from
// an initial state to any state with the target magnitude, or nil when
// unreachable. The path is the abstract counterexample an analyst reads.
func (e *Envisionment) PathTo(magnitude Level) []State {
	type node struct {
		st   State
		prev int
	}
	var nodes []node
	index := map[State]int{}
	for _, st := range e.init {
		if _, ok := index[st]; !ok {
			index[st] = len(nodes)
			nodes = append(nodes, node{st: st, prev: -1})
		}
	}
	for head := 0; head < len(nodes); head++ {
		cur := nodes[head]
		if cur.st.Magnitude == magnitude {
			var rev []State
			for i := head; i >= 0; i = nodes[i].prev {
				rev = append(rev, nodes[i].st)
			}
			out := make([]State, len(rev))
			for i := range rev {
				out[i] = rev[len(rev)-1-i]
			}
			return out
		}
		for _, nxt := range e.succ[cur.st] {
			if _, ok := index[nxt]; !ok {
				index[nxt] = len(nodes)
				nodes = append(nodes, node{st: nxt, prev: head})
			}
		}
	}
	return nil
}

// Constrain removes states not satisfying keep (and their edges),
// returning a new envisionment over the surviving subgraph re-rooted at
// the surviving initial states. It models qualitative background
// knowledge, e.g. "the controller never lets the trend stay + above the
// high mark".
func (e *Envisionment) Constrain(keep func(State) bool) *Envisionment {
	out := &Envisionment{scale: e.scale, succ: map[State][]State{}}
	for _, st := range e.init {
		if keep(st) {
			out.init = append(out.init, st)
		}
	}
	// Recompute reachability under the filter.
	queue := append([]State(nil), out.init...)
	seen := map[State]bool{}
	for _, st := range out.init {
		seen[st] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		var kept []State
		for _, nxt := range e.succ[cur] {
			if keep(nxt) {
				kept = append(kept, nxt)
				if !seen[nxt] {
					seen[nxt] = true
					queue = append(queue, nxt)
				}
			}
		}
		out.succ[cur] = kept
	}
	return out
}
