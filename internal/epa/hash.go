package epa

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// Hash returns a stable FNV-1a fingerprint of the compiled engine: the
// interned port table, connection fan-out, transfer rules, fault seeds,
// and the declared activation set. Two engines built from semantically
// identical model + behaviour inputs hash identically, so the hash keys
// the persistent EPA result cache — a model or behaviour edit changes
// the hash and quietly invalidates every cached result.
func (e *Engine) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	num := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	str := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	str("ports")
	for _, p := range e.ports {
		str(p.Component)
		str(p.Port)
	}
	str("connections")
	for from, tos := range e.outgoing {
		num(int64(from))
		for _, to := range tos {
			num(int64(to))
		}
	}
	str("transfers")
	for from, trs := range e.transfers {
		num(int64(from))
		for _, tr := range trs {
			num(int64(tr.to))
			num(int64(tr.match))
			num(int64(tr.emit))
			str(tr.component)
			str(tr.whenFault)
			str(tr.unlessFault)
		}
	}
	str("seeds")
	acts := make([]Activation, 0, len(e.seeds))
	for act := range e.seeds {
		acts = append(acts, act)
	}
	sortActivations(acts)
	for _, act := range acts {
		str(act.Component)
		str(act.Fault)
		for _, s := range e.seeds[act] {
			num(int64(s.port))
			num(int64(s.emit))
		}
	}
	str("valid")
	acts = acts[:0]
	for act := range e.valid {
		acts = append(acts, act)
	}
	sortActivations(acts)
	for _, act := range acts {
		str(act.Component)
		str(act.Fault)
	}
	return h.Sum64()
}

func sortActivations(acts []Activation) {
	sort.Slice(acts, func(i, j int) bool {
		if acts[i].Component != acts[j].Component {
			return acts[i].Component < acts[j].Component
		}
		return acts[i].Fault < acts[j].Fault
	})
}

// StateVector serializes the result's per-port error states in the
// engine's port-table order — one byte per port, the compact durable
// form the persistent cache stores.
func (r *Result) StateVector() []byte {
	out := make([]byte, len(r.states))
	for i, s := range r.states {
		out[i] = byte(s)
	}
	return out
}

// ResultFromStates rebuilds a Result from a cached state vector. The
// vector must be exactly one byte per engine port (a mismatch means the
// cache entry belongs to a different engine compilation and is rejected).
// Restored results answer every state query (PortState, ComponentState,
// Affected, requirement conditions) identically to a fresh run; only the
// propagation provenance is gone — Path returns nil, since causes are
// recomputed, not cached.
func (e *Engine) ResultFromStates(v []byte) (*Result, error) {
	if len(v) != len(e.ports) {
		return nil, fmt.Errorf("epa: state vector has %d ports, engine has %d", len(v), len(e.ports))
	}
	states := make([]ErrState, len(v))
	for i, b := range v {
		st := ErrState(b)
		if !st.Leq(AnyError) {
			return nil, fmt.Errorf("epa: state vector byte %d holds invalid state %#x", i, b)
		}
		states[i] = st
	}
	return &Result{eng: e, states: states}, nil
}
