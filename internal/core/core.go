// Package core wires the framework's pipeline (paper Fig. 1) into one
// assessment API: system model -> candidate system mutations -> reasoning
// (native EPA fixpoint or the ASP encoding) -> hazard identification ->
// optional CEGAR-styled refinement -> qualitative risk analysis ->
// mitigation solution space -> cost-benefit optimization.
package core

import (
	"fmt"

	"cpsrisk/internal/attack"
	"cpsrisk/internal/cegar"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/mitigation"
	"cpsrisk/internal/optimize"
	"cpsrisk/internal/sysmodel"
)

// Config parameterizes a pipeline run.
type Config struct {
	// Model is the merged system model; composites are refined before
	// analysis (the original is not modified).
	Model *sysmodel.Model
	// Types is the component-type library.
	Types *sysmodel.TypeLibrary
	// Behaviors is the EPA behaviour library; nil uses conservative
	// defaults for every type.
	Behaviors *epa.BehaviorLibrary
	// KB injects attack-induced candidates; nil analyzes spontaneous
	// faults only.
	KB *kb.KB
	// Requirements are the violation conditions checked per scenario.
	Requirements []hazard.Requirement
	// MutationSources selects candidate generation inputs; zero value with
	// a non-empty ExtraMutations analyzes exactly those.
	MutationSources faults.Options
	// ExtraMutations are hand-specified candidates merged into the set.
	ExtraMutations []faults.Mutation
	// ActiveMitigations filters blocked candidates before analysis
	// (paper Listing 1 semantics).
	ActiveMitigations map[string]bool
	// MaxCardinality bounds scenario size (negative = unbounded).
	MaxCardinality int
	// UseASP routes hazard identification through the embedded formal
	// method instead of the native fixpoint engine.
	UseASP bool
	// Optimize runs the mitigation cost-benefit step.
	Optimize bool
	// Budget caps mitigation spending (negative = unlimited); only used
	// when Optimize is set.
	Budget int
	// Oracle enables CEGAR validation of the findings when non-nil,
	// classifying hazards as confirmed/spurious/undetermined.
	Oracle cegar.Oracle
}

// Assessment is the pipeline output.
type Assessment struct {
	// ModelStats describes the analyzed (flattened) model.
	ModelStats sysmodel.Stats
	// Candidates is the full candidate-mutation set before mitigation
	// filtering; Analyzed is the set actually analyzed.
	Candidates []faults.Mutation
	Analyzed   []faults.Mutation
	// Compromisable lists the assets an attacker can take over (attack
	// graph over the KB); nil without a KB.
	Compromisable []string
	// Analysis holds the exhaustive scenario results.
	Analysis *hazard.Analysis
	// Ranked is the risk-prioritized scenario list.
	Ranked []hazard.ScenarioResult
	// RelevantMitigations spans the mitigation solution space.
	RelevantMitigations []*kb.Mitigation
	// Plan and Phases are the optimization outputs (Optimize only).
	Plan   optimize.Plan
	Phases []optimize.Phase
	// Refinement is the CEGAR outcome (Oracle only).
	Refinement *cegar.Result
}

// Run executes the pipeline.
func Run(cfg Config) (*Assessment, error) {
	if cfg.Model == nil || cfg.Types == nil {
		return nil, fmt.Errorf("core: model and type library are required")
	}
	if len(cfg.Requirements) == 0 {
		return nil, fmt.Errorf("core: at least one requirement is required")
	}
	model := cfg.Model.Clone()
	if err := model.RefineAll(); err != nil {
		return nil, fmt.Errorf("core: refine: %w", err)
	}
	if err := model.Validate(cfg.Types); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	behaviors := cfg.Behaviors
	if behaviors == nil {
		behaviors = epa.NewBehaviorLibrary(cfg.Types)
	}
	out := &Assessment{ModelStats: model.Stats()}

	// Step 2: candidate system mutations.
	muts, err := faults.Candidates(model, cfg.Types, cfg.KB, cfg.MutationSources)
	if err != nil {
		return nil, err
	}
	muts = mergeMutations(muts, cfg.ExtraMutations)
	out.Candidates = muts

	if cfg.KB != nil {
		g, err := attack.Build(model, cfg.Types, cfg.KB, attack.Options{
			ActiveMitigations: cfg.ActiveMitigations,
		})
		if err != nil {
			return nil, err
		}
		out.Compromisable = g.Compromisable()
	}

	analyzed := muts
	if cfg.KB != nil && len(cfg.ActiveMitigations) > 0 {
		analyzed = mitigation.Filter(cfg.KB, muts, cfg.ActiveMitigations)
	}
	out.Analyzed = analyzed

	// Steps 3-4: reasoning and hazard identification.
	eng, err := epa.NewEngine(model, behaviors)
	if err != nil {
		return nil, err
	}
	if cfg.UseASP {
		out.Analysis, err = hazard.AnalyzeASP(eng, analyzed, cfg.MaxCardinality, cfg.Requirements)
	} else {
		out.Analysis, err = hazard.Analyze(eng, analyzed, cfg.MaxCardinality, cfg.Requirements)
	}
	if err != nil {
		return nil, err
	}
	out.Ranked = out.Analysis.Ranked()

	// Step 5: CEGAR-styled validation (single-level loop against the
	// configured oracle; multi-level refinement is driven via the cegar
	// package directly).
	if cfg.Oracle != nil {
		out.Refinement, err = cegar.Run([]cegar.Level{{
			Name:         "assessment",
			Engine:       eng,
			Mutations:    analyzed,
			Requirements: cfg.Requirements,
		}}, cfg.Oracle, cfg.MaxCardinality)
		if err != nil {
			return nil, err
		}
	}

	// Steps 6-7: mitigation space and cost-benefit optimization.
	if cfg.KB != nil {
		out.RelevantMitigations = mitigation.Relevant(cfg.KB, muts)
		if cfg.Optimize {
			problem := &optimize.Problem{Budget: cfg.Budget}
			for _, m := range out.RelevantMitigations {
				problem.Options = append(problem.Options, optimize.Option{
					ID: m.ID, Cost: m.Cost + m.MaintenanceCost,
				})
			}
			problem.Scenarios = mitigation.PrepareLosses(cfg.KB, out.Analysis, muts)
			out.Plan, err = problem.Optimal()
			if err != nil {
				return nil, err
			}
			out.Phases, _, err = problem.MultiPhase()
			if err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// mergeMutations unions the extra candidates into the generated set,
// merging sources and keeping the maximum likelihood per activation.
func mergeMutations(base, extra []faults.Mutation) []faults.Mutation {
	if len(extra) == 0 {
		return base
	}
	idx := map[epa.Activation]int{}
	out := append([]faults.Mutation(nil), base...)
	for i, m := range out {
		idx[m.Activation] = i
	}
	for _, m := range extra {
		if i, ok := idx[m.Activation]; ok {
			out[i].Sources = mergeSources(out[i].Sources, m.Sources)
			if m.Likelihood > out[i].Likelihood {
				out[i].Likelihood = m.Likelihood
			}
			continue
		}
		idx[m.Activation] = len(out)
		out = append(out, m)
	}
	return out
}

func mergeSources(a, b []string) []string {
	seen := map[string]bool{}
	out := make([]string, 0, len(a)+len(b))
	for _, s := range append(append([]string(nil), a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
