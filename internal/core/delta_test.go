package core

import (
	"encoding/json"
	"fmt"
	"testing"

	"cpsrisk/internal/artifact"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/sysmodel"
)

// deltaFixture is the shared configuration of the differential corpus:
// one type library, behaviour library, and requirement set reused across
// every run so the configuration hash matches and only the model varies.
type deltaFixture struct {
	types     *sysmodel.TypeLibrary
	behaviors *epa.BehaviorLibrary
	reqs      []hazard.Requirement
}

func newDeltaFixture() *deltaFixture {
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name:  "sensor",
		Ports: []sysmodel.PortSpec{{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow}},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "corrupt", Likelihood: "M"}, {Name: "stuck", Likelihood: "L"},
		},
	})
	// sensorB is the retype target: same ports, different fault effect
	// and a different likelihood — one edit changes behavior and scoring.
	types.MustAdd(&sysmodel.ComponentType{
		Name:       "sensorB",
		Ports:      []sysmodel.PortSpec{{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow}},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "corrupt", Likelihood: "H"}},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "relay",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "drop", Likelihood: "L"}},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name:       "tank",
		Ports:      []sysmodel.PortSpec{{Name: "pipe", Dir: sysmodel.InOut, Flow: sysmodel.QuantityFlow}},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "leak", Likelihood: "L"}},
	})
	types.MustAdd(&sysmodel.ComponentType{
		Name: "hub",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "pipe", Dir: sysmodel.InOut, Flow: sysmodel.QuantityFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "crash", Likelihood: "L"}},
	})

	lib := epa.NewBehaviorLibrary(types)
	lib.MustRegister(&epa.TypeBehavior{
		Type: "sensor",
		Effects: []epa.FaultEffect{
			{Fault: "corrupt", Port: "out", Emit: epa.StateOf(epa.ErrValue)},
			{Fault: "stuck", Port: "out", Emit: epa.StateOf(epa.ErrTiming)},
		},
	})
	lib.MustRegister(&epa.TypeBehavior{
		Type:    "sensorB",
		Effects: []epa.FaultEffect{{Fault: "corrupt", Port: "out", Emit: epa.StateOf(epa.ErrTiming)}},
	})
	lib.MustRegister(&epa.TypeBehavior{
		Type:      "relay",
		Effects:   []epa.FaultEffect{{Fault: "drop", Port: "out", Emit: epa.StateOf(epa.ErrOmission)}},
		Transfers: epa.IdentityTransfers("in", "out"),
	})
	lib.MustRegister(&epa.TypeBehavior{
		Type:    "tank",
		Effects: []epa.FaultEffect{{Fault: "leak", Port: "pipe", Emit: epa.StateOf(epa.ErrValue)}},
	})
	lib.MustRegister(&epa.TypeBehavior{
		Type:    "hub",
		Effects: []epa.FaultEffect{{Fault: "crash", Port: "out", Emit: epa.StateOf(epa.ErrOmission)}},
		Transfers: append(epa.IdentityTransfers("in", "out"),
			epa.IdentityTransfers("pipe", "out")...),
	})

	reqs := []hazard.Requirement{
		{ID: "R-VAL", Severity: qual.High, Condition: hazard.Comp("hub", epa.ErrValue)},
		{ID: "R-TIM", Severity: qual.Medium, Condition: hazard.Comp("hub", epa.ErrTiming)},
		{ID: "R-OM", Severity: qual.Low, Condition: hazard.Comp("hub", epa.ErrOmission)},
	}
	return &deltaFixture{types: types, behaviors: lib, reqs: reqs}
}

// model builds the corpus base plant: four sensors (two direct, two
// behind relays) and a quantity-coupled tank feeding one hub.
func (f *deltaFixture) model() *sysmodel.Model {
	m := sysmodel.NewModel("delta-base")
	m.MustAddComponent(&sysmodel.Component{ID: "hub", Type: "hub"})
	for i := 0; i < 4; i++ {
		m.MustAddComponent(&sysmodel.Component{ID: fmt.Sprintf("s%d", i), Type: "sensor"})
	}
	m.MustAddComponent(&sysmodel.Component{ID: "r0", Type: "relay"})
	m.MustAddComponent(&sysmodel.Component{ID: "r1", Type: "relay"})
	m.MustAddComponent(&sysmodel.Component{ID: "tank", Type: "tank"})
	m.Connect("s0", "out", "hub", "in", sysmodel.SignalFlow)
	m.Connect("s1", "out", "hub", "in", sysmodel.SignalFlow)
	m.Connect("s2", "out", "r0", "in", sysmodel.SignalFlow)
	m.Connect("r0", "out", "hub", "in", sysmodel.SignalFlow)
	m.Connect("s3", "out", "r1", "in", sysmodel.SignalFlow)
	m.Connect("r1", "out", "hub", "in", sysmodel.SignalFlow)
	m.Connect("tank", "pipe", "hub", "pipe", sysmodel.QuantityFlow)
	return m
}

func (f *deltaFixture) config(m *sysmodel.Model) Config {
	return Config{
		Model:           m,
		Types:           f.types,
		Behaviors:       f.behaviors,
		Requirements:    f.reqs,
		MutationSources: faults.Options{IncludeSpontaneous: true},
		MaxCardinality:  2,
	}
}

// canonical renders the parts of a summary that must be byte-identical
// between a delta re-assessment and a cold run: everything except effort
// statistics (sweep/solver counters, durations) and the resolution stamp
// itself.
func canonical(t *testing.T, a *Assessment) string {
	t.Helper()
	s := a.Summarize()
	s.Sweep = nil
	s.Solver = nil
	s.Artifact = nil
	s.DurationMS = 0
	s.Trace = nil
	s.Metrics = nil
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// removeComponent deletes a component and every connection touching it.
func removeComponent(m *sysmodel.Model, id string) {
	comps := m.Components[:0]
	for _, c := range m.Components {
		if c.ID != id {
			comps = append(comps, c)
		}
	}
	m.Components = comps
	conns := m.Connections[:0]
	for _, c := range m.Connections {
		if c.From.Component != id && c.To.Component != id {
			conns = append(conns, c)
		}
	}
	m.Connections = conns
}

// removeConnection deletes the first connection between the two
// components.
func removeConnection(m *sysmodel.Model, from, to string) {
	for i, c := range m.Connections {
		if c.From.Component == from && c.To.Component == to {
			m.Connections = append(m.Connections[:i], m.Connections[i+1:]...)
			return
		}
	}
	panic("removeConnection: no such connection " + from + ">" + to)
}

func retype(m *sysmodel.Model, id, typ string) {
	c, ok := m.Component(id)
	if !ok {
		panic("retype: no component " + id)
	}
	c.Type = typ
}

func setAttr(m *sysmodel.Model, id, key, val string) {
	c, ok := m.Component(id)
	if !ok {
		panic("setAttr: no component " + id)
	}
	if c.Attrs == nil {
		c.Attrs = map[string]string{}
	}
	c.Attrs[key] = val
}

// TestDeltaCorpus is the differential corpus: ~20 scripted model edits,
// each asserting that delta re-assessment against a cached parent
// produces a report byte-identical to a cold run of the edited model,
// and that each edit resolves to the expected artifact path.
func TestDeltaCorpus(t *testing.T) {
	f := newDeltaFixture()
	cases := []struct {
		name string
		edit func(*sysmodel.Model)
		want string // expected Artifact.Path on the edited run
	}{
		// Metadata-only edits: invisible to the EPA engine, zero rows
		// invalidated.
		{"attr-note", func(m *sysmodel.Model) { setAttr(m, "s0", "note", "recalibrated") }, "delta"},
		{"attr-criticality", func(m *sysmodel.Model) { setAttr(m, "tank", "criticality", "VH") }, "delta"},
		{"attr-version", func(m *sysmodel.Model) { setAttr(m, "r0", "version", "2.4.1") }, "delta"},
		{"layer", func(m *sysmodel.Model) { c, _ := m.Component("r0"); c.Layer = "technology" }, "delta"},
		{"display-name", func(m *sysmodel.Model) { c, _ := m.Component("hub"); c.Name = "Central Hub" }, "delta"},
		{"multi-meta", func(m *sysmodel.Model) {
			setAttr(m, "s0", "note", "a")
			setAttr(m, "s1", "note", "b")
			c, _ := m.Component("tank")
			c.Layer = "physical"
		}, "delta"},
		// Behavioral edits: the touched cone re-executes, the rest reuses.
		{"retype-direct-sensor", func(m *sysmodel.Model) { retype(m, "s0", "sensorB") }, "delta"},
		{"retype-relayed-sensor", func(m *sysmodel.Model) { retype(m, "s3", "sensorB") }, "delta"},
		{"retype-two-sensors", func(m *sysmodel.Model) { retype(m, "s1", "sensorB"); retype(m, "s2", "sensorB") }, "delta"},
		{"add-connected-sensor", func(m *sysmodel.Model) {
			m.MustAddComponent(&sysmodel.Component{ID: "s4", Type: "sensor"})
			m.Connect("s4", "out", "hub", "in", sysmodel.SignalFlow)
		}, "delta"},
		{"add-isolated-sensor", func(m *sysmodel.Model) {
			m.MustAddComponent(&sysmodel.Component{ID: "s9", Type: "sensor"})
		}, "delta"},
		{"add-second-tank", func(m *sysmodel.Model) {
			m.MustAddComponent(&sysmodel.Component{ID: "tank2", Type: "tank"})
			m.Connect("tank2", "pipe", "hub", "pipe", sysmodel.QuantityFlow)
		}, "delta"},
		{"remove-direct-sensor", func(m *sysmodel.Model) { removeComponent(m, "s1") }, "delta"},
		{"remove-relay-chain", func(m *sysmodel.Model) { removeComponent(m, "r1"); removeComponent(m, "s3") }, "delta"},
		{"rewire-sensor-to-relay", func(m *sysmodel.Model) {
			removeConnection(m, "s1", "hub")
			m.Connect("s1", "out", "r0", "in", sysmodel.SignalFlow)
		}, "delta"},
		{"rewire-sensor-past-relay", func(m *sysmodel.Model) {
			removeConnection(m, "s2", "r0")
			m.Connect("s2", "out", "hub", "in", sysmodel.SignalFlow)
		}, "delta"},
		{"unplug-quantity-flow", func(m *sysmodel.Model) { removeConnection(m, "tank", "hub") }, "delta"},
		{"relabel-connection", func(m *sysmodel.Model) { m.Connections[0].Label = "calibration feed" }, "delta"},
		{"retype-plus-meta", func(m *sysmodel.Model) {
			retype(m, "s2", "sensorB")
			setAttr(m, "s0", "note", "x")
		}, "delta"},
		{"add-plus-remove", func(m *sysmodel.Model) {
			removeComponent(m, "s1")
			m.MustAddComponent(&sysmodel.Component{ID: "s4", Type: "sensor"})
			m.Connect("s4", "out", "hub", "in", sysmodel.SignalFlow)
		}, "delta"},
		// Non-incremental edits fall back to a cold run.
		{"wide-edit-exceeds-gate", func(m *sysmodel.Model) {
			for i := 0; i < MaxDeltaTouched+1; i++ {
				m.MustAddComponent(&sysmodel.Component{ID: fmt.Sprintf("w%d", i), Type: "sensor"})
			}
		}, "cold"},
		{"model-requirement-change", func(m *sysmodel.Model) {
			m.Requirements = append(m.Requirements, sysmodel.Requirement{ID: "MR-1", Description: "doc"})
		}, "cold"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ac := artifact.New(4)
			defer ac.Close()
			parentCfg := f.config(f.model())
			parentCfg.ArtifactCache = ac
			if _, err := Run(parentCfg); err != nil {
				t.Fatal(err)
			}

			edited := f.model()
			tc.edit(edited)
			warmCfg := f.config(edited)
			warmCfg.ArtifactCache = ac
			warm, err := Run(warmCfg)
			if err != nil {
				t.Fatal(err)
			}
			if warm.Artifact == nil || warm.Artifact.Path != tc.want {
				t.Fatalf("artifact = %+v, want path %q", warm.Artifact, tc.want)
			}

			coldModel := f.model()
			tc.edit(coldModel)
			cold, err := Run(f.config(coldModel))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := canonical(t, warm), canonical(t, cold); got != want {
				t.Fatalf("delta report diverged from cold run\ndelta: %s\ncold:  %s", got, want)
			}
			if tc.want == "delta" && warm.Analysis.Sweep != nil {
				if warm.Analysis.Sweep.Reused == 0 && warm.Artifact.Touched == 0 {
					t.Fatal("metadata-only delta executed the full sweep")
				}
			}
		})
	}
}

// TestArtifactWarmHit: an identical re-run resolves warm and returns the
// identical report with zero additional sweep work.
func TestArtifactWarmHit(t *testing.T) {
	f := newDeltaFixture()
	ac := artifact.New(4)
	defer ac.Close()

	cfg := f.config(f.model())
	cfg.ArtifactCache = ac
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Artifact == nil || first.Artifact.Path != "cold" {
		t.Fatalf("first run artifact = %+v, want cold", first.Artifact)
	}

	cfg2 := f.config(f.model())
	cfg2.ArtifactCache = ac
	second, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if second.Artifact.Path != "warm" {
		t.Fatalf("second run artifact = %+v, want warm", second.Artifact)
	}
	if canonical(t, first) != canonical(t, second) {
		t.Fatal("warm report diverged from the run that seeded it")
	}
	st := ac.Stats()
	if st.Hits != 1 {
		t.Fatalf("cache stats = %+v, want exactly one hit", st)
	}
}

// TestArtifactASPSessionMigration: on the ASP path a metadata-only edit
// migrates the parent's grounded solver session instead of re-grounding,
// and still reports byte-identically to a cold ASP run.
func TestArtifactASPSessionMigration(t *testing.T) {
	f := newDeltaFixture()
	ac := artifact.New(4)
	defer ac.Close()

	parentCfg := f.config(f.model())
	parentCfg.UseASP = true
	parentCfg.ArtifactCache = ac
	if _, err := Run(parentCfg); err != nil {
		t.Fatal(err)
	}

	edited := f.model()
	setAttr(edited, "s0", "note", "midnight calibration")
	warmCfg := f.config(edited)
	warmCfg.UseASP = true
	warmCfg.ArtifactCache = ac
	warm, err := Run(warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Artifact == nil || warm.Artifact.Path != "delta" {
		t.Fatalf("artifact = %+v, want delta (migrated session)", warm.Artifact)
	}

	coldModel := f.model()
	setAttr(coldModel, "s0", "note", "midnight calibration")
	coldCfg := f.config(coldModel)
	coldCfg.UseASP = true
	cold, err := Run(coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	if canonical(t, warm) != canonical(t, cold) {
		t.Fatal("ASP session-migration report diverged from cold run")
	}
}

// TestArtifactFaultsBypass: chaos runs must not consult or poison the
// artifact cache.
func TestArtifactFaultsBypass(t *testing.T) {
	f := newDeltaFixture()
	ac := artifact.New(4)
	defer ac.Close()

	cfg := f.config(f.model())
	cfg.ArtifactCache = ac
	// An armed injector whose site never fires: the run completes
	// normally but counts as a chaos run for cache gating.
	inj, err := faultinject.New(1, "sweep.eval=transient@999999999")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = inj
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Artifact != nil {
		t.Fatalf("artifact = %+v, want nil on a faults-armed run", a.Artifact)
	}
	if ac.Len() != 0 {
		t.Fatalf("cache holds %d entries after a faults-armed run", ac.Len())
	}
}
