// Package dynamics implements stateful qualitative models — the temporal
// side of the framework's reasoning (paper §II-C: Telingo "capturing the
// dynamic behavior of the qualitative model", and Listing 2's fault
// model "the state of a component does not change when the stuck_at_x
// fault mode is active"). A System declares qualitative state variables
// over finite domains and guarded update rules; it compiles to an ASP
// program over a bounded horizon with frame-rule inertia, fault-guarded
// updates, and functional-consistency constraints. Deterministic systems
// yield exactly one trajectory per fault injection, extractable as an
// LTLf trace for requirement checking with the temporal package.
package dynamics

import (
	"fmt"
	"sort"

	"cpsrisk/internal/logic"
	"cpsrisk/internal/solver"
	"cpsrisk/internal/temporal"
)

// Domain is a finite qualitative value domain.
type Domain struct {
	Name   string
	Values []string
}

// Var is a qualitative state variable.
type Var struct {
	Name   string
	Domain string
	// Init is the value at step 0.
	Init string
}

// Cond is a rule guard over the current step: a variable equals (or does
// not equal) a value.
type Cond struct {
	Var string
	Val string
	Neg bool
}

// Rule assigns Target := Next at step T+1 when every condition holds at
// step T and the fault guards admit it. Unguarded variables keep their
// value by inertia (the frame rule). A stuck-at fault is modeled by
// putting UnlessFault on the normal update rules of the component — with
// the fault active no rule assigns the variable, and inertia freezes it,
// which is exactly the paper's Listing 2 semantics.
type Rule struct {
	Target string
	Next   string
	When   []Cond
	// WhenFaults fires the rule only while every listed fault is active
	// ("component:fault" keys).
	WhenFaults []string
	// UnlessFaults suppresses the rule while any listed fault is active.
	UnlessFaults []string
}

// Injection activates a fault from a step onward.
type Injection struct {
	Key    string // "component:fault"
	AtStep int
}

// System is a qualitative transition system.
type System struct {
	Domains []Domain
	Vars    []Var
	Rules   []Rule
}

// Validate checks referential consistency.
func (s *System) Validate() error {
	domains := map[string]map[string]bool{}
	for _, d := range s.Domains {
		if d.Name == "" || len(d.Values) == 0 {
			return fmt.Errorf("dynamics: domain %q is empty", d.Name)
		}
		if _, dup := domains[d.Name]; dup {
			return fmt.Errorf("dynamics: duplicate domain %q", d.Name)
		}
		vals := map[string]bool{}
		for _, v := range d.Values {
			if vals[v] {
				return fmt.Errorf("dynamics: domain %q has duplicate value %q", d.Name, v)
			}
			vals[v] = true
		}
		domains[d.Name] = vals
	}
	vars := map[string]string{}
	for _, v := range s.Vars {
		if _, dup := vars[v.Name]; dup {
			return fmt.Errorf("dynamics: duplicate variable %q", v.Name)
		}
		dom, ok := domains[v.Domain]
		if !ok {
			return fmt.Errorf("dynamics: variable %q has unknown domain %q", v.Name, v.Domain)
		}
		if !dom[v.Init] {
			return fmt.Errorf("dynamics: variable %q init %q outside domain %q", v.Name, v.Init, v.Domain)
		}
		vars[v.Name] = v.Domain
	}
	for i, r := range s.Rules {
		dom, ok := vars[r.Target]
		if !ok {
			return fmt.Errorf("dynamics: rule %d targets unknown variable %q", i, r.Target)
		}
		if !domains[dom][r.Next] {
			return fmt.Errorf("dynamics: rule %d assigns %q outside domain of %q", i, r.Next, r.Target)
		}
		for _, c := range r.When {
			cdom, ok := vars[c.Var]
			if !ok {
				return fmt.Errorf("dynamics: rule %d conditions on unknown variable %q", i, c.Var)
			}
			if !domains[cdom][c.Val] {
				return fmt.Errorf("dynamics: rule %d condition value %q outside domain of %q", i, c.Val, c.Var)
			}
		}
	}
	return nil
}

// HoldsAtom builds holds(var, val, t).
func HoldsAtom(variable, value string, t logic.Term) logic.Atom {
	return logic.A("holds", logic.Sym(variable), logic.Sym(value), t)
}

// ActiveAtom builds dyn_active(key, t) — the fault-activity atom at a step.
func ActiveAtom(key string, t logic.Term) logic.Atom {
	return logic.A("dyn_active", logic.Sym(key), t)
}

// Encode compiles the system over the horizon (steps 0..horizon-1):
//
//	holds(V, init, 0).
//	rule_i fired: assigned(V, T+1) plus holds(V, next, T+1)
//	inertia:      holds(V, X, T+1) :- holds(V, X, T), step(T), not assigned(V, T+1).
//	consistency:  :- holds(V, X1, T), holds(V, X2, T), X1 != X2  (per variable)
//
// Injections become dyn_active facts per step. The program is
// deterministic (one answer set) when at most one rule per variable fires
// at each step; conflicting simultaneous assignments make it UNSAT, which
// Run reports as a modeling error rather than silently picking one.
func (s *System) Encode(horizon int, injections []Injection) (*logic.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if horizon < 1 {
		return nil, fmt.Errorf("dynamics: horizon %d < 1", horizon)
	}
	prog := &logic.Program{}
	sym := logic.Sym
	varT := logic.Var("T")

	// step(T) holds for transitions (0..horizon-2); time(T) for states.
	prog.AddFact(logic.A("time", logic.Interval{Lo: logic.Num(0), Hi: logic.Num(horizon - 1)}))
	if horizon >= 2 {
		prog.AddFact(logic.A("step", logic.Interval{Lo: logic.Num(0), Hi: logic.Num(horizon - 2)}))
	}
	for _, v := range s.Vars {
		prog.AddFact(HoldsAtom(v.Name, v.Init, logic.Num(0)))
	}
	for _, inj := range injections {
		if inj.AtStep < 0 || inj.AtStep >= horizon {
			return nil, fmt.Errorf("dynamics: injection %q at step %d outside horizon %d",
				inj.Key, inj.AtStep, horizon)
		}
		if inj.AtStep <= horizon-1 {
			prog.AddFact(ActiveAtom(inj.Key,
				logic.Interval{Lo: logic.Num(inj.AtStep), Hi: logic.Num(horizon - 1)}))
		}
	}

	tPlus1 := logic.BinOp{Op: logic.OpAdd, Left: varT, Right: logic.Num(1)}
	for _, r := range s.Rules {
		body := []logic.BodyElem{logic.Pos(logic.A("step", varT))}
		for _, c := range r.When {
			lit := HoldsAtom(c.Var, c.Val, varT)
			if c.Neg {
				body = append(body, logic.Not(lit))
			} else {
				body = append(body, logic.Pos(lit))
			}
		}
		for _, f := range r.WhenFaults {
			body = append(body, logic.Pos(ActiveAtom(f, varT)))
		}
		for _, f := range r.UnlessFaults {
			body = append(body, logic.Not(ActiveAtom(f, varT)))
		}
		prog.AddRule(logic.NormalRule(HoldsAtom(r.Target, r.Next, tPlus1), body...))
		prog.AddRule(logic.NormalRule(
			logic.A("assigned", sym(r.Target), tPlus1), body...))
	}
	// Inertia (the frame rule, Listing 2's shape).
	frame, err := logic.Parse(`
		holds(V, X, T+1) :- holds(V, X, T), step(T), not assigned(V, T+1).
		:- holds(V, X1, T), holds(V, X2, T), X1 != X2.
	`)
	if err != nil {
		return nil, err
	}
	prog.Extend(frame)
	return prog, nil
}

// Trajectory is the solved evolution of the system.
type Trajectory struct {
	Horizon int
	// Values[t][var] is the variable's value at step t.
	Values []map[string]string
}

// Run encodes, solves, and extracts the (unique) trajectory.
func (s *System) Run(horizon int, injections []Injection) (*Trajectory, error) {
	prog, err := s.Encode(horizon, injections)
	if err != nil {
		return nil, err
	}
	res, err := solver.SolveProgram(prog, solver.Options{MaxModels: 2})
	if err != nil {
		return nil, err
	}
	switch len(res.Models) {
	case 0:
		return nil, fmt.Errorf("dynamics: inconsistent model (conflicting simultaneous assignments)")
	case 1:
	default:
		return nil, fmt.Errorf("dynamics: nondeterministic model (%d trajectories)", len(res.Models))
	}
	m := res.Models[0]
	tr := &Trajectory{Horizon: horizon, Values: make([]map[string]string, horizon)}
	for t := 0; t < horizon; t++ {
		tr.Values[t] = map[string]string{}
	}
	for _, v := range s.Vars {
		dom := s.domainOf(v.Domain)
		for t := 0; t < horizon; t++ {
			for _, val := range dom {
				if m.Contains(HoldsAtom(v.Name, val, logic.Num(t)).Key()) {
					tr.Values[t][v.Name] = val
					break
				}
			}
			if tr.Values[t][v.Name] == "" {
				return nil, fmt.Errorf("dynamics: variable %q has no value at step %d", v.Name, t)
			}
		}
	}
	return tr, nil
}

func (s *System) domainOf(name string) []string {
	for _, d := range s.Domains {
		if d.Name == name {
			return d.Values
		}
	}
	return nil
}

// Value returns the value of a variable at a step ("" when out of range).
func (tr *Trajectory) Value(t int, variable string) string {
	if t < 0 || t >= len(tr.Values) {
		return ""
	}
	return tr.Values[t][variable]
}

// PropTrace renders the trajectory as an LTLf trace whose states carry
// holds(var,val) propositions — the bridge to requirement checking.
func (tr *Trajectory) PropTrace() temporal.Trace {
	out := make(temporal.Trace, len(tr.Values))
	for t, vals := range tr.Values {
		st := temporal.State{}
		names := make([]string, 0, len(vals))
		for name := range vals {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st[logic.A("holds", logic.Sym(name), logic.Sym(vals[name])).Key()] = true
		}
		out[t] = st
	}
	return out
}
