package solver

import (
	"context"
	"fmt"

	"cpsrisk/internal/budget"
)

// lit is a propositional literal: +v for the positive, -v for the negative
// literal of variable v (v >= 1). litTrue is the pseudo-literal "constant
// true" used in support bookkeeping (never appears inside clauses).
type lit int

const litTrue lit = 0

func (l lit) variable() int { return abs(int(l)) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// watchIdx maps a literal to its watch-list slot: positive literals at 2v,
// negative at 2v+1.
func watchIdx(l lit) int {
	v := l.variable()
	if l > 0 {
		return 2 * v
	}
	return 2*v + 1
}

// sat is a DPLL SAT engine with two-watched-literal propagation and
// chronological backtracking. It supports adding clauses mid-search (used
// for loop formulas, blocking clauses, and optimization bounds) and an
// objective propagator for branch-and-bound.
type sat struct {
	nVars   int
	clauses [][]lit
	watches [][]int // watchIdx(lit) -> clause indices watching it

	assign   []int8 // var -> 0 unknown, 1 true, -1 false
	level    []int  // var -> decision level it was assigned at
	trail    []lit
	trailLim []int // decision-level start indices into trail
	decided  []lit // the decision literal of each level
	flipped  []bool

	qhead int

	// Objective propagator (branch and bound).
	weight  []int64 // var -> objective weight of assigning true (0 if none)
	curCost int64
	bound   int64 // prune when curCost >= bound
	pruning bool

	// Statistics.
	decisions, conflicts, propagations, restarts int64

	order []int // static branching order of variables

	unsatRoot bool // an empty clause was added: trivially unsatisfiable

	// Resource governance: zero caps mean unlimited, nil ctx means no
	// cancellation. The context is polled every ctxPollInterval budget
	// checks to keep the hot loop cheap.
	maxDecisions, maxConflicts int64
	ctx                        context.Context
	ctxPolls                   int
}

// ctxPollInterval is how many search-loop iterations pass between
// context polls.
const ctxPollInterval = 64

// checkBudget reports why the search must stop now (as an
// *budget.ExhaustedError with stage "solve"), or nil.
func (s *sat) checkBudget() error {
	if s.maxDecisions > 0 && s.decisions >= s.maxDecisions {
		return &budget.ExhaustedError{
			Stage: "solve", Reason: budget.ReasonDecisions,
			Detail: fmt.Sprintf("%d decisions", s.decisions),
		}
	}
	if s.maxConflicts > 0 && s.conflicts >= s.maxConflicts {
		return &budget.ExhaustedError{
			Stage: "solve", Reason: budget.ReasonConflicts,
			Detail: fmt.Sprintf("%d conflicts", s.conflicts),
		}
	}
	if s.ctx != nil {
		s.ctxPolls++
		if s.ctxPolls >= ctxPollInterval {
			s.ctxPolls = 0
			if err := s.ctx.Err(); err != nil {
				return budget.New(s.ctx, budget.Limits{}).Err("solve")
			}
		}
	}
	return nil
}

// applyBudget installs the caps of a budget (nil = unlimited) and
// forces an immediate context poll on the first check.
func (s *sat) applyBudget(b *budget.Budget) {
	if b == nil {
		return
	}
	l := b.Limits()
	s.maxDecisions = l.MaxDecisions
	s.maxConflicts = l.MaxConflicts
	s.ctx = b.Context()
	s.ctxPolls = ctxPollInterval
}

func newSAT() *sat {
	s := &sat{bound: 1 << 62}
	s.newVar() // allocate var 0 placeholder so vars start at 1
	return s
}

func (s *sat) newVar() int {
	s.nVars++
	s.assign = append(s.assign, 0)
	s.level = append(s.level, 0)
	s.weight = append(s.weight, 0)
	s.watches = append(s.watches, nil, nil)
	return s.nVars - 1
}

func (s *sat) value(l lit) int8 {
	v := s.assign[l.variable()]
	if l < 0 {
		return -v
	}
	return v
}

func (s *sat) decisionLevel() int { return len(s.trailLim) }

// addClause installs a clause. At decision level 0 it simplifies against
// the fixed assignment; during search the caller must ensure the solver is
// backtracked (via backtrackForClause) until the clause is not conflicting.
func (s *sat) addClause(ls []lit) {
	// Simplify: drop duplicate literals; detect tautologies.
	seen := map[lit]bool{}
	out := make([]lit, 0, len(ls))
	for _, l := range ls {
		if l == litTrue {
			return // clause contains constant true: tautology
		}
		if seen[-l] {
			return // l and ¬l: tautology
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	if len(out) == 0 {
		s.unsatRoot = true
		return
	}
	if len(out) == 1 {
		// A unit clause holds in every model: restart to level 0 so the
		// assignment persists for the rest of the search.
		if s.decisionLevel() > 0 {
			s.restarts++
		}
		for s.decisionLevel() > 0 {
			s.cancelLevel()
		}
		switch s.value(out[0]) {
		case 1:
			return
		case -1:
			s.unsatRoot = true
			return
		}
		s.uncheckedEnqueue(out[0])
		return
	}
	ci := len(s.clauses)
	s.clauses = append(s.clauses, out)
	// Watch two literals, preferring non-false ones so the invariant
	// "a watched literal is false only if the other is true or the clause
	// is unit/conflicting at the current level" holds after the caller's
	// backtracking.
	w1, w2 := s.pickWatches(out)
	out[0], out[w1] = out[w1], out[0]
	if w2 == 0 {
		w2 = w1
	}
	out[1], out[w2] = out[w2], out[1]
	s.watches[watchIdx(out[0])] = append(s.watches[watchIdx(out[0])], ci)
	s.watches[watchIdx(out[1])] = append(s.watches[watchIdx(out[1])], ci)
	// If unit under current assignment, enqueue.
	if s.value(out[0]) == 0 && s.value(out[1]) == -1 && len(out) > 1 {
		s.uncheckedEnqueue(out[0])
	}
}

func (s *sat) pickWatches(c []lit) (int, int) {
	w1, w2 := -1, -1
	for i, l := range c {
		if s.value(l) != -1 {
			if w1 < 0 {
				w1 = i
			} else if w2 < 0 {
				w2 = i
				break
			}
		}
	}
	if w1 < 0 {
		w1 = 0
	}
	if w2 < 0 {
		for i := range c {
			if i != w1 {
				w2 = i
				break
			}
		}
	}
	if w2 < 0 {
		w2 = w1
	}
	return w1, w2
}

// clauseStatus returns 1 if satisfied, -1 if conflicting (all false),
// 0 otherwise.
func (s *sat) clauseStatus(c []lit) int {
	allFalse := true
	for _, l := range c {
		switch s.value(l) {
		case 1:
			return 1
		case 0:
			allFalse = false
		}
	}
	if allFalse {
		return -1
	}
	return 0
}

func (s *sat) uncheckedEnqueue(l lit) {
	v := l.variable()
	if l > 0 {
		s.assign[v] = 1
		s.curCost += s.weight[v]
	} else {
		s.assign[v] = -1
	}
	s.level[v] = s.decisionLevel()
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns false on conflict
// (including an objective-bound violation).
func (s *sat) propagate() bool {
	for s.qhead < len(s.trail) {
		if s.pruning && s.curCost >= s.bound {
			return false
		}
		p := s.trail[s.qhead]
		s.qhead++
		s.propagations++
		// Visit clauses watching ¬p.
		wi := watchIdx(-p)
		ws := s.watches[wi]
		kept := ws[:0]
		for n := 0; n < len(ws); n++ {
			ci := ws[n]
			c := s.clauses[ci]
			// Ensure c[0] is the other watch.
			if c[0] == -p {
				c[0], c[1] = c[1], c[0]
			}
			if s.value(c[0]) == 1 {
				kept = append(kept, ci)
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(c); k++ {
				if s.value(c[k]) != -1 {
					c[1], c[k] = c[k], c[1]
					s.watches[watchIdx(c[1])] = append(s.watches[watchIdx(c[1])], ci)
					found = true
					break
				}
			}
			if found {
				continue
			}
			kept = append(kept, ci)
			if s.value(c[0]) == -1 {
				// Conflict: restore remaining watches and fail.
				kept = append(kept, ws[n+1:]...)
				s.watches[wi] = kept
				return false
			}
			s.uncheckedEnqueue(c[0])
		}
		s.watches[wi] = kept
	}
	if s.pruning && s.curCost >= s.bound {
		return false
	}
	return true
}

// decide starts a new decision level with literal l.
func (s *sat) decide(l lit) {
	s.decisions++
	s.trailLim = append(s.trailLim, len(s.trail))
	s.decided = append(s.decided, l)
	s.flipped = append(s.flipped, false)
	s.uncheckedEnqueue(l)
}

// cancelLevel undoes the topmost decision level.
func (s *sat) cancelLevel() {
	limit := s.trailLim[len(s.trailLim)-1]
	for i := len(s.trail) - 1; i >= limit; i-- {
		l := s.trail[i]
		v := l.variable()
		if l > 0 {
			s.curCost -= s.weight[v]
		}
		s.assign[v] = 0
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:len(s.trailLim)-1]
	s.decided = s.decided[:len(s.decided)-1]
	s.flipped = s.flipped[:len(s.flipped)-1]
	if s.qhead > len(s.trail) {
		s.qhead = len(s.trail)
	}
}

// resolveConflict backtracks chronologically, flipping the deepest
// unflipped decision. Returns false when the search space is exhausted.
func (s *sat) resolveConflict() bool {
	s.conflicts++
	for len(s.trailLim) > 0 {
		top := len(s.trailLim) - 1
		wasFlipped := s.flipped[top]
		l := s.decided[top]
		s.cancelLevel()
		if !wasFlipped {
			s.trailLim = append(s.trailLim, len(s.trail))
			s.decided = append(s.decided, -l)
			s.flipped = append(s.flipped, true)
			s.uncheckedEnqueue(-l)
			return true
		}
	}
	return false
}

// backtrackForClause backtracks until the given clause is no longer
// conflicting (or level 0 is reached).
func (s *sat) backtrackForClause(c []lit) {
	for s.decisionLevel() > 0 && s.clauseStatus(c) == -1 {
		top := len(s.trailLim) - 1
		wasFlipped := s.flipped[top]
		l := s.decided[top]
		s.cancelLevel()
		if !wasFlipped && s.clauseStatus(c) != -1 {
			// Re-descend on the flipped branch later through normal search;
			// here we only need the clause non-conflicting.
			_ = l
			return
		}
	}
}

// pickBranchVar returns the next unassigned variable in static order, or 0
// when the assignment is total.
func (s *sat) pickBranchVar() int {
	for _, v := range s.order {
		if s.assign[v] == 0 {
			return v
		}
	}
	for v := 1; v < s.nVars; v++ {
		if s.assign[v] == 0 {
			return v
		}
	}
	return 0
}

// search runs DPLL until a total assignment satisfies all clauses, calling
// onTotal. onTotal returns "accept": if false (model rejected, e.g. a loop
// clause was added) the search continues from the (possibly backtracked)
// state; if true the search also continues (enumeration) after the caller
// installed a blocking clause. search returns when the space is exhausted
// or onTotal signals stop via the returned stop flag. A budget cap or
// cancellation aborts the search with an *budget.ExhaustedError; the
// caller decides whether models found so far constitute a usable partial
// answer.
func (s *sat) search(onTotal func() (stop bool)) error {
	if s.unsatRoot {
		return nil
	}
	if !s.propagate() {
		if !s.resolveConflict() {
			return nil
		}
	}
	for {
		if s.unsatRoot {
			return nil
		}
		if err := s.checkBudget(); err != nil {
			return err
		}
		if !s.propagate() {
			if !s.resolveConflict() {
				return nil
			}
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			if s.unsatRoot {
				return nil
			}
			if onTotal() {
				return nil
			}
			if s.unsatRoot {
				return nil
			}
			// Continue: the callback added clauses; if the current state is
			// still total and consistent we must force progress.
			if s.qhead == len(s.trail) && s.pickBranchVar() == 0 {
				if !s.resolveConflict() {
					return nil
				}
			}
			continue
		}
		s.decide(lit(-v)) // prefer false: smaller answer sets first
	}
}

func (s *sat) validateTotal() error {
	for ci, c := range s.clauses {
		if s.clauseStatus(c) != 1 {
			return fmt.Errorf("solver: internal error: clause %d unsatisfied at total assignment", ci)
		}
	}
	return nil
}
