.PHONY: check test build vet fuzz

# check is the canonical verification target: vet + build + race tests +
# short fuzz runs. Set FUZZTIME to change the per-target fuzz duration.
check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

fuzz:
	go test -run='^$$' -fuzz=FuzzParse -fuzztime=$${FUZZTIME:-5s} ./internal/logic
	go test -run='^$$' -fuzz=FuzzParseFormula -fuzztime=$${FUZZTIME:-5s} ./internal/temporal
	go test -run='^$$' -fuzz=FuzzReadJSON -fuzztime=$${FUZZTIME:-5s} ./internal/sysmodel
