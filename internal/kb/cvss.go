// Package kb implements the security knowledge bases the framework injects
// into the system model (paper Fig. 1, step 2; §IV-A): weakness,
// vulnerability, attack-pattern, technique/tactic, and mitigation catalogs
// shaped after CWE, CVE/CVSS, CAPEC, and MITRE ATT&CK (ICS), plus a
// complete CVSS v3.1 base-score implementation. The catalog entries
// shipped in DefaultKB are a curated synthetic subset (the live databases
// are not reachable from an offline build); the schema, cross-references,
// and scoring are faithful.
package kb

import (
	"fmt"
	"math"
	"strings"

	"cpsrisk/internal/qual"
)

// CVSS31 holds the eight base metrics of a CVSS v3.1 vector.
type CVSS31 struct {
	AttackVector       string // N, A, L, P
	AttackComplexity   string // L, H
	PrivilegesRequired string // N, L, H
	UserInteraction    string // N, R
	Scope              string // U, C
	Confidentiality    string // H, L, N
	Integrity          string // H, L, N
	Availability       string // H, L, N
}

// ParseCVSS31 parses a vector string like
// "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H". All eight base metrics
// are required.
func ParseCVSS31(vector string) (CVSS31, error) {
	var v CVSS31
	parts := strings.Split(vector, "/")
	if len(parts) == 0 || (parts[0] != "CVSS:3.1" && parts[0] != "CVSS:3.0") {
		return v, fmt.Errorf("kb: vector %q must start with CVSS:3.1", vector)
	}
	seen := map[string]bool{}
	for _, p := range parts[1:] {
		kv := strings.SplitN(p, ":", 2)
		if len(kv) != 2 {
			return v, fmt.Errorf("kb: malformed metric %q in %q", p, vector)
		}
		key, val := kv[0], kv[1]
		if seen[key] {
			return v, fmt.Errorf("kb: duplicate metric %q in %q", key, vector)
		}
		seen[key] = true
		var ok bool
		switch key {
		case "AV":
			ok = oneOf(val, "N", "A", "L", "P")
			v.AttackVector = val
		case "AC":
			ok = oneOf(val, "L", "H")
			v.AttackComplexity = val
		case "PR":
			ok = oneOf(val, "N", "L", "H")
			v.PrivilegesRequired = val
		case "UI":
			ok = oneOf(val, "N", "R")
			v.UserInteraction = val
		case "S":
			ok = oneOf(val, "U", "C")
			v.Scope = val
		case "C":
			ok = oneOf(val, "H", "L", "N")
			v.Confidentiality = val
		case "I":
			ok = oneOf(val, "H", "L", "N")
			v.Integrity = val
		case "A":
			ok = oneOf(val, "H", "L", "N")
			v.Availability = val
		default:
			return v, fmt.Errorf("kb: unknown metric %q in %q", key, vector)
		}
		if !ok {
			return v, fmt.Errorf("kb: invalid value %q for metric %q in %q", val, key, vector)
		}
	}
	for _, required := range []struct{ name, val string }{
		{"AV", v.AttackVector}, {"AC", v.AttackComplexity},
		{"PR", v.PrivilegesRequired}, {"UI", v.UserInteraction},
		{"S", v.Scope}, {"C", v.Confidentiality},
		{"I", v.Integrity}, {"A", v.Availability},
	} {
		if required.val == "" {
			return v, fmt.Errorf("kb: vector %q missing metric %s", vector, required.name)
		}
	}
	return v, nil
}

func oneOf(v string, allowed ...string) bool {
	for _, a := range allowed {
		if v == a {
			return true
		}
	}
	return false
}

// Vector renders the canonical vector string.
func (v CVSS31) Vector() string {
	return fmt.Sprintf("CVSS:3.1/AV:%s/AC:%s/PR:%s/UI:%s/S:%s/C:%s/I:%s/A:%s",
		v.AttackVector, v.AttackComplexity, v.PrivilegesRequired, v.UserInteraction,
		v.Scope, v.Confidentiality, v.Integrity, v.Availability)
}

// BaseScore computes the CVSS v3.1 base score per the FIRST specification
// (paper ref [12]).
func (v CVSS31) BaseScore() float64 {
	iss := 1 - (1-ciaWeight(v.Confidentiality))*(1-ciaWeight(v.Integrity))*(1-ciaWeight(v.Availability))
	var impact float64
	if v.Scope == "U" {
		impact = 6.42 * iss
	} else {
		impact = 7.52*(iss-0.029) - 3.25*math.Pow(iss-0.02, 15)
	}
	exploitability := 8.22 * avWeight(v.AttackVector) * acWeight(v.AttackComplexity) *
		prWeight(v.PrivilegesRequired, v.Scope) * uiWeight(v.UserInteraction)
	if impact <= 0 {
		return 0
	}
	var score float64
	if v.Scope == "U" {
		score = math.Min(impact+exploitability, 10)
	} else {
		score = math.Min(1.08*(impact+exploitability), 10)
	}
	return roundup1(score)
}

// roundup1 is the CVSS "Roundup" function: the smallest number with one
// decimal place that is >= its input, implemented with integer arithmetic
// to avoid floating-point artifacts as the spec prescribes.
func roundup1(x float64) float64 {
	intInput := math.Round(x * 100000)
	if math.Mod(intInput, 10000) == 0 {
		return intInput / 100000
	}
	return (math.Floor(intInput/10000) + 1) / 10
}

func ciaWeight(m string) float64 {
	switch m {
	case "H":
		return 0.56
	case "L":
		return 0.22
	default: // N
		return 0
	}
}

func avWeight(m string) float64 {
	switch m {
	case "N":
		return 0.85
	case "A":
		return 0.62
	case "L":
		return 0.55
	default: // P
		return 0.2
	}
}

func acWeight(m string) float64 {
	if m == "L" {
		return 0.77
	}
	return 0.44 // H
}

func prWeight(m, scope string) float64 {
	switch m {
	case "N":
		return 0.85
	case "L":
		if scope == "C" {
			return 0.68
		}
		return 0.62
	default: // H
		if scope == "C" {
			return 0.5
		}
		return 0.27
	}
}

func uiWeight(m string) float64 {
	if m == "N" {
		return 0.85
	}
	return 0.62 // R
}

// Severity buckets a base score into the CVSS qualitative rating scale.
func Severity(score float64) string {
	switch {
	case score <= 0:
		return "None"
	case score < 4.0:
		return "Low"
	case score < 7.0:
		return "Medium"
	case score < 9.0:
		return "High"
	default:
		return "Critical"
	}
}

// QualLevel maps a base score onto the framework's five-point O-RA scale
// (VL..VH), the bridge between CVSS scoring and qualitative risk
// quantization (§IV-B).
func QualLevel(score float64) qual.Level {
	switch {
	case score <= 0:
		return qual.VeryLow
	case score < 4.0:
		return qual.Low
	case score < 7.0:
		return qual.Medium
	case score < 9.0:
		return qual.High
	default:
		return qual.VeryHigh
	}
}
