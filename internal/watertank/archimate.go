package watertank

import (
	"cpsrisk/internal/archimate"
	"cpsrisk/internal/plant"
	"cpsrisk/internal/sysmodel"
)

// ArchimateView builds the engineering-facing ArchiMate model of the case
// study (paper §VII: "We used Archimate to model the system and the
// corresponding metadata, and then we transformed the model to Answer Set
// Programming"). Equipment and the shared water quantity live in the
// physical layer; controllers and the PLC-like valve controllers in the
// technology layer; the HMI and the Engineering Workstation (composed of
// e-mail client, browser, and OS) in the application layer. Lowering the
// view yields a component graph with the same IT-to-OT propagation shape
// as the hand-built sysmodel.
func ArchimateView() *archimate.Model {
	m := &archimate.Model{Name: "water-tank-architecture"}
	el := func(id, name string, t archimate.ElementType, props map[string]string) {
		m.AddElement(archimate.Element{ID: id, Name: name, Type: t, Props: props})
	}
	el(plant.CompTank, "Water Tank", archimate.Equipment,
		map[string]string{"criticality": "VH"})
	el(plant.CompInValve, "Input Valve", archimate.Equipment, nil)
	el(plant.CompOutValve, "Output Valve", archimate.Equipment, nil)
	el(plant.CompLevelSensor, "Water Level Sensor", archimate.Device, nil)
	el(plant.CompController, "Water Tank Controller", archimate.Device, nil)
	el(plant.CompInValveCtl, "Input Valve Controller", archimate.Device, nil)
	el(plant.CompOutValveCtl, "Output Valve Controller", archimate.Device, nil)
	el(plant.CompHMI, "Human-Machine Interface", archimate.ApplicationComponent,
		map[string]string{"criticality": "H"})
	el(plant.CompEWS, "Engineering Workstation", archimate.ApplicationComponent,
		map[string]string{"exposure": "public", "version": "10"})
	el("email_client", "E-mail Client", archimate.ApplicationService,
		map[string]string{"exposure": "public"})
	el("browser", "Browser", archimate.ApplicationService,
		map[string]string{"exposure": "public", "version": "11.2"})
	el("os", "Operating System", archimate.SystemSoftware,
		map[string]string{"version": "10"})

	flow := func(from, to, label string) {
		m.AddRelation(archimate.Relation{Type: archimate.Flow, From: from, To: to, Label: label})
	}
	qty := func(from, to string) {
		m.AddRelation(archimate.Relation{Type: archimate.Association, From: from, To: to,
			Props: map[string]string{"quantity": "true"}})
	}
	qty(plant.CompInValve, plant.CompTank)
	qty(plant.CompOutValve, plant.CompTank)
	qty(plant.CompLevelSensor, plant.CompTank)
	flow(plant.CompLevelSensor, plant.CompController, "water level")
	flow(plant.CompController, plant.CompInValveCtl, "control message")
	flow(plant.CompController, plant.CompOutValveCtl, "control message")
	flow(plant.CompInValveCtl, plant.CompInValve, "actuate")
	flow(plant.CompOutValveCtl, plant.CompOutValve, "actuate")
	flow(plant.CompController, plant.CompHMI, "alert")
	flow(plant.CompEWS, plant.CompInValveCtl, "reconfigure")
	flow(plant.CompEWS, plant.CompOutValveCtl, "reconfigure")
	flow(plant.CompEWS, plant.CompHMI, "manage")

	// Fig. 4: the workstation decomposes into the infection chain.
	comp := func(parent, child string) {
		m.AddRelation(archimate.Relation{Type: archimate.Composition, From: parent, To: child})
	}
	comp(plant.CompEWS, "email_client")
	comp(plant.CompEWS, "browser")
	comp(plant.CompEWS, "os")
	flow("email_client", "browser", "open link")
	flow("browser", "os", "download malware")

	m.Reqs = append(m.Reqs,
		sysmodel.Requirement{ID: "R1",
			Description: "the water tank should not overflow",
			Formula:     "G !state(tank,overflow)", Severity: "H"},
		sysmodel.Requirement{ID: "R2",
			Description: "an alert must be sent to the operator in case of overflow",
			Formula:     "G (state(tank,overflow) -> F alerted(operator))", Severity: "H"},
	)
	return m
}
