package qual

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// QuantitySpace partitions a continuous physical domain into ordered
// qualitative regions separated by landmarks (paper §II-B: "partitions
// continuous domains into different clusters of identical or similar
// behavior along landmarks").
//
// With landmarks l1 < l2 < ... < ln the space has n+1 regions:
//
//	region 0: (-inf, l1)
//	region i: [li, l(i+1))
//	region n: [ln, +inf)
//
// Each region carries a label; the labels form the induced Scale.
type QuantitySpace struct {
	name      string
	landmarks []float64
	scale     *Scale
}

// NewQuantitySpace builds a quantity space. len(labels) must be
// len(landmarks)+1 and landmarks must be strictly increasing and finite.
func NewQuantitySpace(name string, landmarks []float64, labels []string) (*QuantitySpace, error) {
	if len(labels) != len(landmarks)+1 {
		return nil, fmt.Errorf("qual: space %q needs %d labels for %d landmarks, got %d",
			name, len(landmarks)+1, len(landmarks), len(labels))
	}
	for i, lm := range landmarks {
		if math.IsNaN(lm) || math.IsInf(lm, 0) {
			return nil, fmt.Errorf("qual: space %q landmark %d is not finite", name, i)
		}
		if i > 0 && landmarks[i-1] >= lm {
			return nil, fmt.Errorf("qual: space %q landmarks not strictly increasing at %d (%v >= %v)",
				name, i, landmarks[i-1], lm)
		}
	}
	scale, err := NewScale(name, labels...)
	if err != nil {
		return nil, err
	}
	lms := make([]float64, len(landmarks))
	copy(lms, landmarks)
	return &QuantitySpace{name: name, landmarks: lms, scale: scale}, nil
}

// MustQuantitySpace panics on error; for package-level well-known spaces.
func MustQuantitySpace(name string, landmarks []float64, labels []string) *QuantitySpace {
	qs, err := NewQuantitySpace(name, landmarks, labels)
	if err != nil {
		panic(err)
	}
	return qs
}

// Name returns the space name.
func (q *QuantitySpace) Name() string { return q.name }

// Scale returns the induced ordered scale of region labels.
func (q *QuantitySpace) Scale() *Scale { return q.scale }

// Landmarks returns a copy of the landmark values.
func (q *QuantitySpace) Landmarks() []float64 {
	out := make([]float64, len(q.landmarks))
	copy(out, q.landmarks)
	return out
}

// Abstract maps a continuous value to its qualitative region level.
// NaN abstracts to the lowest region (callers should validate inputs; EPA
// treats unknown readings through explicit error states, not NaN).
func (q *QuantitySpace) Abstract(v float64) Level {
	// sort.SearchFloat64s returns the number of landmarks <= v for the
	// predicate below, which is exactly the region index.
	i := sort.Search(len(q.landmarks), func(i int) bool { return v < q.landmarks[i] })
	return Level(i)
}

// AbstractSeries abstracts a sampled waveform into a qualitative level
// sequence, the discrete temporal behaviour the paper's reasoner consumes.
func (q *QuantitySpace) AbstractSeries(vs []float64) []Level {
	out := make([]Level, len(vs))
	for i, v := range vs {
		out[i] = q.Abstract(v)
	}
	return out
}

// Representative returns a numeric value inside region l, used when
// concretizing a qualitative counterexample for simulation-based validation
// (CEGAR refinement). For unbounded end regions it extrapolates by the width
// of the nearest bounded region (or 1.0 when no width is available).
func (q *QuantitySpace) Representative(l Level) float64 {
	n := len(q.landmarks)
	if n == 0 {
		return 0
	}
	l = q.scale.Clamp(l)
	switch {
	case l == 0:
		return q.landmarks[0] - q.regionWidth()
	case int(l) == n:
		return q.landmarks[n-1] + q.regionWidth()
	default:
		return (q.landmarks[l-1] + q.landmarks[l]) / 2
	}
}

func (q *QuantitySpace) regionWidth() float64 {
	if len(q.landmarks) < 2 {
		return 1.0
	}
	return (q.landmarks[len(q.landmarks)-1] - q.landmarks[0]) / float64(len(q.landmarks)-1)
}

// String implements fmt.Stringer.
func (q *QuantitySpace) String() string {
	parts := make([]string, 0, 2*len(q.landmarks)+1)
	for i, label := range q.scale.labels {
		parts = append(parts, label)
		if i < len(q.landmarks) {
			parts = append(parts, fmt.Sprintf("|%g|", q.landmarks[i]))
		}
	}
	return fmt.Sprintf("%s[%s]", q.name, strings.Join(parts, " "))
}
