package hazard

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math/bits"
	"os"
	"path/filepath"
	"strings"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/store"
)

// Sweep checkpointing persists the frontier of a running scenario sweep
// — the contiguous prefix of completed stream ranks — so an interrupted
// or budget-truncated assessment resumes instead of starting over.
//
// Resume does NOT skip enumeration: the sweep replays from rank 0 and
// the persistent result cache turns every already-completed scenario
// into a lookup, which is what makes the resumed report byte-identical
// to an uninterrupted run — every scenario is re-scored from the same
// deterministic state vectors through the same code path. The frontier's
// role is accounting: scenarios below it do not count against the
// MaxScenarios budget (they were already paid for), so a budget-bounded
// sweep makes forward progress on every resume.
//
// Durability follows the store package's protocol: the checkpoint file
// is published atomically (temp + fsync + rename), carries a CRC over
// its payload, and a corrupt file is quarantined — the sweep then starts
// from scratch rather than trusting a damaged frontier. Write-ahead
// ordering holds between the two artifacts: the result cache is flushed
// before the frontier that references it is persisted, so a crash
// between the two leaves a frontier that under-promises, never one that
// points at results that don't exist.

const (
	// ckptMagic heads the checkpoint file.
	ckptMagic = "CPSCKPT1\n"
	// ckptFile is the checkpoint file name inside the checkpoint dir.
	ckptFile = "sweep.ckpt"
	// ckptVersion is bumped on any incompatible state change.
	ckptVersion = 1
	// DefaultCheckpointEvery is the frontier-advance granularity between
	// checkpoint writes.
	DefaultCheckpointEvery = 1024
)

// ckptState is the durable frontier record.
type ckptState struct {
	Version    int    `json:"version"`
	EngineHash string `json:"engineHash"`
	MutsHash   string `json:"mutsHash"`
	ReqsHash   string `json:"reqsHash"`
	MaxCard    int    `json:"maxCard"`
	// Frontier is the contiguous count of completed stream ranks: every
	// scenario with rank < Frontier has its result in the cache.
	Frontier int `json:"frontier"`
	// Ranges breaks the frontier down per cardinality — redundant with
	// Frontier but keeps the file self-describing for humans and tools.
	Ranges []CardRange `json:"ranges,omitempty"`
	// Complete marks a sweep that finished its whole space.
	Complete bool `json:"complete"`
	// Shard tags the rank range this frontier belongs to, as
	// "index/count" ("" = whole space). A shard checkpoint also lives in
	// its own file, but the embedded tag keeps a renamed file from
	// resuming the wrong range.
	Shard string `json:"shard,omitempty"`
}

// CardRange describes the completed slice of one cardinality level.
type CardRange struct {
	Card int `json:"card"`
	// Upto counts completed combinatorial ranks at this cardinality
	// (lexicographic order, matching the enumeration stream).
	Upto int `json:"upto"`
	// Total is C(n, Card) — the full extent of the level.
	Total int `json:"total"`
}

// Checkpoint manages the durable frontier of one sweep directory.
type Checkpoint struct {
	dir   string
	file  string
	shard string
	every int
	inj   *faultinject.Injector

	loaded *ckptState // state found on disk at Open (nil = fresh)
}

// OpenCheckpoint loads (or prepares) the checkpoint in dir. every is the
// number of newly completed scenarios between persisted frontier updates
// (0 = DefaultCheckpointEvery). A corrupt checkpoint file is quarantined
// — moved to <file>.quarantined — and the sweep starts fresh; only an
// unusable directory is an error.
func OpenCheckpoint(dir string, every int) (*Checkpoint, error) {
	return OpenCheckpointShard(dir, every, 0, 0)
}

// OpenCheckpointShard is OpenCheckpoint for one shard of a sharded
// sweep: each shard owns its own frontier file
// (sweep.<index>of<count>.ckpt) in the shared directory, so m
// cooperating processes checkpoint independently. shardCount <= 1 is
// the plain whole-space checkpoint.
func OpenCheckpointShard(dir string, every, shardIndex, shardCount int) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("hazard: checkpoint: %w", err)
	}
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	ck := &Checkpoint{dir: dir, file: ckptFile, every: every}
	if shardCount > 1 {
		if shardIndex < 0 || shardIndex >= shardCount {
			return nil, fmt.Errorf("hazard: checkpoint: shard index %d outside [0,%d)", shardIndex, shardCount)
		}
		ck.file = fmt.Sprintf("sweep.%dof%d.ckpt", shardIndex, shardCount)
		ck.shard = fmt.Sprintf("%d/%d", shardIndex, shardCount)
	}
	// Janitor: a crash mid-write leaves unpublished temp files behind.
	if tmps, err := filepath.Glob(filepath.Join(dir, "*.tmp")); err == nil {
		for _, t := range tmps {
			os.Remove(t)
		}
	}
	path := filepath.Join(dir, ck.file)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return ck, nil
	}
	if err != nil {
		return nil, fmt.Errorf("hazard: checkpoint: %w", err)
	}
	st, derr := decodeCheckpoint(data)
	if derr != nil {
		// Quarantine, never trust or delete: resume from scratch costs
		// only recomputation, a bad frontier costs correctness.
		_ = os.Rename(path, path+".quarantined")
		return ck, nil
	}
	ck.loaded = &st
	return ck, nil
}

// SetInjector arms the checkpoint-write chaos site.
func (ck *Checkpoint) SetInjector(inj *faultinject.Injector) {
	if ck != nil {
		ck.inj = inj
	}
}

// Resume validates the loaded state against the sweep about to run and
// returns the frontier rank to resume from (0 = start fresh). A hash or
// shape mismatch — different model, candidate set, requirements, or
// cardinality bound — silently invalidates the checkpoint: resuming
// someone else's frontier would mislabel scenarios.
func (ck *Checkpoint) Resume(engHash, mutsHash, reqsHash uint64, maxCard int) int {
	if ck == nil || ck.loaded == nil {
		return 0
	}
	st := ck.loaded
	if st.Version != ckptVersion ||
		st.EngineHash != fmt.Sprintf("%016x", engHash) ||
		st.MutsHash != fmt.Sprintf("%016x", mutsHash) ||
		st.ReqsHash != fmt.Sprintf("%016x", reqsHash) ||
		st.MaxCard != maxCard ||
		st.Shard != ck.shard {
		return 0
	}
	return st.Frontier
}

// save persists the frontier atomically. Failures are reported but the
// sweep treats them as degradation, not fatality — a missing checkpoint
// only costs future resume work.
func (ck *Checkpoint) save(st ckptState) error {
	if ck == nil {
		return nil
	}
	st.Shard = ck.shard
	path := filepath.Join(ck.dir, ck.file)
	data := encodeCheckpoint(st)
	if ck.inj != nil {
		if err := ck.inj.Fire(faultinject.SiteCheckpointWrite); err != nil {
			if faultinject.IsTorn(err) {
				// A crashed non-atomic writer: half a checkpoint at the
				// final path. The next Open must quarantine it.
				_ = os.WriteFile(path, data[:len(data)/2], 0o644)
			}
			return fmt.Errorf("hazard: checkpoint: %w", err)
		}
	}
	if err := store.AtomicWrite(path, data); err != nil {
		return fmt.Errorf("hazard: checkpoint: %w", err)
	}
	return nil
}

// encodeCheckpoint renders the durable form:
//
//	CPSCKPT1\n
//	crc:<8 hex over payload>\n
//	<payload JSON>
func encodeCheckpoint(st ckptState) []byte {
	payload, err := json.Marshal(st)
	if err != nil {
		// ckptState marshals by construction; a failure is a programming
		// error worth crashing loudly on.
		panic(fmt.Sprintf("hazard: checkpoint marshal: %v", err))
	}
	var sb strings.Builder
	sb.WriteString(ckptMagic)
	fmt.Fprintf(&sb, "crc:%08x\n", crcIEEE(payload))
	sb.Write(payload)
	return []byte(sb.String())
}

// decodeCheckpoint parses and verifies a checkpoint file. It never
// panics on arbitrary input (fuzzed by FuzzCheckpoint); any deviation —
// bad magic, bad CRC line, checksum mismatch, malformed JSON — is an
// error the caller turns into quarantine.
func decodeCheckpoint(data []byte) (ckptState, error) {
	var st ckptState
	s := string(data)
	if !strings.HasPrefix(s, ckptMagic) {
		return st, fmt.Errorf("hazard: checkpoint: bad magic")
	}
	s = s[len(ckptMagic):]
	nl := strings.IndexByte(s, '\n')
	if nl < 0 {
		return st, fmt.Errorf("hazard: checkpoint: truncated before payload")
	}
	crcLine, payload := s[:nl], s[nl+1:]
	var want uint32
	if _, err := fmt.Sscanf(crcLine, "crc:%08x", &want); err != nil {
		return st, fmt.Errorf("hazard: checkpoint: bad crc line %q", crcLine)
	}
	if got := crcIEEE([]byte(payload)); got != want {
		return st, fmt.Errorf("hazard: checkpoint: checksum mismatch %08x != %08x", got, want)
	}
	dec := json.NewDecoder(strings.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&st); err != nil {
		return st, fmt.Errorf("hazard: checkpoint: %w", err)
	}
	if st.Frontier < 0 {
		return st, fmt.Errorf("hazard: checkpoint: negative frontier")
	}
	return st, nil
}

// frontierRanges decomposes a contiguous frontier rank into the
// per-cardinality completed ranges recorded in the checkpoint file.
func frontierRanges(n, maxCard, frontier int) []CardRange {
	if maxCard < 0 || maxCard > n {
		maxCard = n
	}
	var out []CardRange
	left := frontier
	for c := 0; c <= maxCard && left > 0; c++ {
		total := binomialSat(n, c)
		upto := left
		if upto > total {
			upto = total
		}
		out = append(out, CardRange{Card: c, Upto: upto, Total: total})
		left -= upto
	}
	return out
}

// hashMuts fingerprints the candidate mutation set (order-sensitive; the
// generator sorts deterministically).
func hashMuts(muts []faults.Mutation) uint64 {
	h := fnv.New64a()
	for _, m := range muts {
		fmt.Fprintf(h, "%s\x00%s\x00%d\x00%s\x00", m.Component, m.Fault, m.Likelihood, strings.Join(m.Sources, ","))
	}
	return h.Sum64()
}

// hashReqs fingerprints the requirement set, including the violation
// conditions via their canonical rendering.
func hashReqs(reqs []Requirement) uint64 {
	h := fnv.New64a()
	for _, r := range reqs {
		cond := ""
		if r.Condition != nil {
			cond = r.Condition.String()
		}
		fmt.Fprintf(h, "%s\x00%d\x00%s\x00", r.ID, r.Severity, cond)
	}
	return h.Sum64()
}

// SweepNamespace derives the result-cache namespace for one (engine,
// candidate set) pair. Requirements are deliberately excluded: the cache
// stores EPA state vectors, which do not depend on how they are scored.
func SweepNamespace(eng *epa.Engine, muts []faults.Mutation) uint64 {
	return eng.Hash() ^ bits.RotateLeft64(hashMuts(muts), 32)
}

func crcIEEE(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
