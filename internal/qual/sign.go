package qual

import "fmt"

// Sign is the three-valued sign algebra of qualitative physics plus the
// "unknown" value that qualitative arithmetic produces when the result is
// ambiguous (e.g. plus + minus).
type Sign int

// Sign values. Unknown is deliberately the zero value so that uninitialized
// qualitative influences are conservative (anything is possible).
const (
	SignUnknown Sign = iota
	SignNeg
	SignZero
	SignPos
)

// String implements fmt.Stringer.
func (s Sign) String() string {
	switch s {
	case SignNeg:
		return "-"
	case SignZero:
		return "0"
	case SignPos:
		return "+"
	default:
		return "?"
	}
}

// SignOf abstracts a float to its sign.
func SignOf(v float64) Sign {
	switch {
	case v < 0:
		return SignNeg
	case v > 0:
		return SignPos
	default:
		return SignZero
	}
}

// AddSign is qualitative addition: results are exact except pos+neg which is
// unknown. Unknown is absorbing unless the other operand is zero-identity.
func AddSign(a, b Sign) Sign {
	switch {
	case a == SignZero:
		return b
	case b == SignZero:
		return a
	case a == SignUnknown || b == SignUnknown:
		return SignUnknown
	case a == b:
		return a
	default: // pos + neg
		return SignUnknown
	}
}

// MulSign is qualitative multiplication; exact for the sign algebra, with
// zero annihilating even unknown (0 * x = 0).
func MulSign(a, b Sign) Sign {
	if a == SignZero || b == SignZero {
		return SignZero
	}
	if a == SignUnknown || b == SignUnknown {
		return SignUnknown
	}
	if a == b {
		return SignPos
	}
	return SignNeg
}

// NegSign negates a sign.
func NegSign(a Sign) Sign {
	switch a {
	case SignNeg:
		return SignPos
	case SignPos:
		return SignNeg
	default:
		return a
	}
}

// Refines reports whether a is at least as precise as b: every sign refines
// unknown, and each definite sign refines itself.
func (s Sign) Refines(b Sign) bool { return b == SignUnknown || s == b }

// ParseSign parses "-", "0", "+", "?".
func ParseSign(text string) (Sign, error) {
	switch text {
	case "-":
		return SignNeg, nil
	case "0":
		return SignZero, nil
	case "+":
		return SignPos, nil
	case "?":
		return SignUnknown, nil
	default:
		return SignUnknown, fmt.Errorf("qual: invalid sign %q", text)
	}
}
