package qual

import (
	"testing"
)

func TestStateSuccessorsContinuity(t *testing.T) {
	s := FiveLevel()

	// Rising from a middle region: may stay or move exactly one region up;
	// trend may stay + or pass through 0 — never jump to -.
	for _, succ := range (State{Magnitude: Medium, Trend: SignPos}).Successors(s) {
		if succ.Magnitude != Medium && succ.Magnitude != High {
			t.Errorf("rising successor jumped to magnitude %v", succ.Magnitude)
		}
		if succ.Trend == SignNeg {
			t.Errorf("trend jumped from + to - without passing 0")
		}
	}

	// At the top with a rising trend: magnitude saturates.
	for _, succ := range (State{Magnitude: VeryHigh, Trend: SignPos}).Successors(s) {
		if succ.Magnitude != VeryHigh {
			t.Errorf("saturated state moved to %v", succ.Magnitude)
		}
	}

	// Steady state: magnitude must not move.
	for _, succ := range (State{Magnitude: Medium, Trend: SignZero}).Successors(s) {
		if succ.Magnitude != Medium {
			t.Errorf("steady state moved magnitude to %v", succ.Magnitude)
		}
	}
}

func TestStateSuccessorsUnknownTrendIsSuperset(t *testing.T) {
	s := FiveLevel()
	unk := map[State]bool{}
	for _, succ := range (State{Magnitude: Medium, Trend: SignUnknown}).Successors(s) {
		unk[succ] = true
	}
	for _, d := range []Sign{SignPos, SignNeg, SignZero} {
		for _, succ := range (State{Magnitude: Medium, Trend: d}).Successors(s) {
			// every definite-trend successor with matching/zero trend reachable
			// from unknown must appear when its trend is itself reachable
			if succ.Trend == SignUnknown {
				continue
			}
			if !unk[succ] && succ.Trend != SignNeg && succ.Trend != SignPos && succ.Trend != SignZero {
				t.Errorf("unknown-trend successors miss %v", succ)
			}
		}
	}
	// unknown must at least contain stay-put with every trend
	for _, d := range []Sign{SignUnknown, SignPos, SignZero, SignNeg} {
		if !unk[State{Magnitude: Medium, Trend: d}] {
			t.Errorf("unknown-trend successors miss stay-put with trend %v", d)
		}
	}
}

func TestAbstractTraceCollapsesAndTracksTrend(t *testing.T) {
	qs := MustQuantitySpace("level",
		[]float64{0.1, 0.3, 0.7, 0.9},
		[]string{"empty", "low", "normal", "high", "overflow"})

	// A filling tank sampled finely: many samples, few qualitative states.
	vs := make([]float64, 0, 101)
	for i := 0; i <= 100; i++ {
		vs = append(vs, float64(i)/100.0)
	}
	states := AbstractTrace(qs, vs, 1e-9)
	if len(states) < 5 {
		t.Fatalf("expected at least 5 qualitative states, got %d: %v", len(states), states)
	}
	// All intermediate states must be rising.
	for i, st := range states {
		if i < len(states)-1 && st.Trend != SignPos {
			t.Errorf("state %d of filling trace has trend %v", i, st.Trend)
		}
	}
	// Magnitudes must be non-decreasing and cover empty..overflow.
	if states[0].Magnitude != 0 {
		t.Errorf("trace must start empty, got %v", states[0].Magnitude)
	}
	if states[len(states)-1].Magnitude != qs.Scale().Max() {
		t.Errorf("trace must end at overflow, got %v", states[len(states)-1].Magnitude)
	}
	for i := 1; i < len(states); i++ {
		if states[i].Magnitude < states[i-1].Magnitude {
			t.Errorf("magnitude decreased in filling trace at %d", i)
		}
	}
}

func TestAbstractTraceDeadband(t *testing.T) {
	qs := MustQuantitySpace("x", []float64{1}, []string{"lo", "hi"})
	// Tiny oscillation below eps must abstract to a single steady state.
	states := AbstractTrace(qs, []float64{0.5, 0.5000001, 0.4999999, 0.5}, 1e-3)
	if len(states) != 1 {
		t.Fatalf("expected 1 state, got %d: %v", len(states), states)
	}
	if states[0].Trend != SignZero {
		t.Errorf("expected steady trend, got %v", states[0].Trend)
	}
}

func TestAbstractTraceEmpty(t *testing.T) {
	qs := MustQuantitySpace("x", []float64{1}, []string{"lo", "hi"})
	if got := AbstractTrace(qs, nil, 0.1); got != nil {
		t.Errorf("empty trace should abstract to nil, got %v", got)
	}
}

func TestStateLabelIn(t *testing.T) {
	s := FiveLevel()
	st := State{Magnitude: High, Trend: SignPos}
	if got := st.LabelIn(s); got != "H/+" {
		t.Errorf("LabelIn = %q", got)
	}
}
