module cpsrisk

go 1.22
