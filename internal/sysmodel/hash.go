package sysmodel

// Canonical content hashing of models — the identity layer under the
// compiled-artifact cache (internal/artifact). A model's hash is an
// FNV-1a digest of a normalized encoding: components sorted by ID,
// connections sorted by canonical key, requirements sorted by ID, no
// whitespace, no field separators a JSON round-trip could perturb. Two
// models that differ only in declaration order or in the model's display
// name hash identically; any semantic edit changes the hash.
//
// Beyond the whole-model hash, a Fingerprint carries per-component and
// per-connection sub-hashes so two models can be diffed structurally:
// Diff reports which components were added, removed, or changed — split
// into *behavioral* changes (type, composite structure: anything the
// compiled EPA engine can observe) and *metadata* changes (attrs, layer,
// display name: inputs to candidate generation and risk scoring but not
// to error propagation). Delta re-assessment uses exactly this split —
// a metadata-only edit invalidates no EPA rows at all.

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// Fingerprint is the structural identity of a model: the whole-model
// hash plus per-part sub-hashes for diffing.
type Fingerprint struct {
	// ModelHash is the canonical whole-model hash (== Model.Hash()).
	ModelHash uint64
	// Components maps component ID -> full sub-hash (every field).
	Components map[string]uint64
	// Behavior maps component ID -> behavioral sub-hash (type and
	// composite structure only — what the EPA engine compiles).
	Behavior map[string]uint64
	// Connections maps a canonical connection key -> connection hash.
	Connections map[string]uint64
	// Requirements digests the model's requirement list.
	Requirements uint64
}

// Hash returns the canonical FNV-1a content hash of the model. The
// model's display Name is excluded — a renamed file with identical
// structure is the same model.
func (m *Model) Hash() uint64 { return m.Fingerprint().ModelHash }

// Fingerprint computes the model's structural identity: the canonical
// hash plus per-component/per-connection sub-hashes for Diff.
func (m *Model) Fingerprint() *Fingerprint {
	fp := &Fingerprint{
		Components:  make(map[string]uint64, len(m.Components)),
		Behavior:    make(map[string]uint64, len(m.Components)),
		Connections: make(map[string]uint64, len(m.Connections)),
	}
	for _, c := range m.Components {
		fp.Components[c.ID] = componentHash(c, true)
		fp.Behavior[c.ID] = componentHash(c, false)
	}
	for _, conn := range m.Connections {
		// Duplicate keys (same endpoints+flow, different label) combine
		// by XOR so the fingerprint stays order-independent.
		fp.Connections[conn.Key()] ^= connectionHash(conn)
	}
	fp.Requirements = requirementsHash(m.Requirements)

	h := fnv.New64a()
	w := hashWriter{h: h}
	w.str("components")
	ids := make([]string, 0, len(fp.Components))
	for id := range fp.Components {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w.str(id)
		w.num(fp.Components[id])
	}
	w.str("connections")
	keys := make([]string, 0, len(fp.Connections))
	for k := range fp.Connections {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.str(k)
		w.num(fp.Connections[k])
	}
	w.str("requirements")
	w.num(fp.Requirements)
	fp.ModelHash = h.Sum64()
	return fp
}

// Key is the canonical identity of a connection slot: endpoints and
// flow kind, label excluded (labels are annotations). Fingerprint and
// Delta use it as the connection map key; delta re-assessment maps a
// changed key back to the connection's endpoint components.
func (c Connection) Key() string {
	return c.From.String() + ">" + c.To.String() + "#" + c.Flow.String()
}

// hashWriter folds strings and numbers into an FNV-1a digest with
// NUL-terminated strings so concatenation ambiguity cannot alias two
// different models onto one hash.
type hashWriter struct{ h interface{ Write([]byte) (int, error) } }

func (w hashWriter) str(s string) {
	w.h.Write([]byte(s))
	w.h.Write([]byte{0})
}

func (w hashWriter) num(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.h.Write(buf[:])
}

// componentHash digests one component. full=true hashes every field;
// full=false hashes only what the EPA engine can observe (ID, type, and
// recursively the composite structure) — the behavioral identity.
func componentHash(c *Component, full bool) uint64 {
	h := fnv.New64a()
	w := hashWriter{h: h}
	w.str(c.ID)
	w.str(c.Type)
	if full {
		w.str(c.Name)
		w.str(c.Layer)
		keys := make([]string, 0, len(c.Attrs))
		for k := range c.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			w.str(k)
			w.str(c.Attrs[k])
		}
	}
	if c.Sub != nil {
		w.str("sub")
		if full {
			w.num(c.Sub.Hash())
		} else {
			w.num(behaviorModelHash(c.Sub))
		}
		outer := make([]string, 0, len(c.Bindings))
		for k := range c.Bindings {
			outer = append(outer, k)
		}
		sort.Strings(outer)
		for _, k := range outer {
			w.str(k)
			w.str(c.Bindings[k].String())
		}
	}
	return h.Sum64()
}

// behaviorModelHash is the behavioral analogue of Model.Hash for
// composite inner models: components reduced to their behavioral hash,
// connections and bindings in full (they are all structure).
func behaviorModelHash(m *Model) uint64 {
	h := fnv.New64a()
	w := hashWriter{h: h}
	ids := make([]string, 0, len(m.Components))
	byID := make(map[string]uint64, len(m.Components))
	for _, c := range m.Components {
		ids = append(ids, c.ID)
		byID[c.ID] = componentHash(c, false)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w.str(id)
		w.num(byID[id])
	}
	keys := make([]string, 0, len(m.Connections))
	byKey := make(map[string]uint64, len(m.Connections))
	for _, conn := range m.Connections {
		k := conn.Key()
		keys = append(keys, k)
		byKey[k] ^= connectionHash(conn)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.str(k)
		w.num(byKey[k])
	}
	return h.Sum64()
}

// connectionHash digests one connection including its label.
func connectionHash(c Connection) uint64 {
	h := fnv.New64a()
	w := hashWriter{h: h}
	w.str(c.From.String())
	w.str(c.To.String())
	w.str(c.Flow.String())
	w.str(c.Label)
	return h.Sum64()
}

// requirementsHash digests the requirement list, order-independently.
func requirementsHash(reqs []Requirement) uint64 {
	lines := make([]string, 0, len(reqs))
	for _, r := range reqs {
		lines = append(lines, r.ID+"\x00"+r.Description+"\x00"+r.Formula+"\x00"+r.Severity)
	}
	sort.Strings(lines)
	h := fnv.New64a()
	w := hashWriter{h: h}
	for _, l := range lines {
		w.str(l)
	}
	return h.Sum64()
}

// Delta is the structural difference between two fingerprints, from the
// perspective of re-assessing the new model given results for the old.
type Delta struct {
	// Added / Removed / ChangedBehavior / ChangedMeta partition the
	// differing component IDs (sorted). ChangedBehavior components
	// changed in a way the EPA engine observes (type, composite
	// structure); ChangedMeta components changed only metadata (attrs,
	// layer, display name).
	Added, Removed, ChangedBehavior, ChangedMeta []string
	// ConnsChanged lists the canonical keys of connections present in
	// only one model or differing between the two (sorted).
	ConnsChanged []string
	// RequirementsChanged reports a differing model-requirement list.
	RequirementsChanged bool
}

// Diff computes the structural delta from fingerprint a (the cached
// parent) to fingerprint b (the model being assessed).
func (a *Fingerprint) Diff(b *Fingerprint) *Delta {
	d := &Delta{RequirementsChanged: a.Requirements != b.Requirements}
	for id, bh := range b.Components {
		ah, ok := a.Components[id]
		switch {
		case !ok:
			d.Added = append(d.Added, id)
		case ah != bh:
			if a.Behavior[id] != b.Behavior[id] {
				d.ChangedBehavior = append(d.ChangedBehavior, id)
			} else {
				d.ChangedMeta = append(d.ChangedMeta, id)
			}
		}
	}
	for id := range a.Components {
		if _, ok := b.Components[id]; !ok {
			d.Removed = append(d.Removed, id)
		}
	}
	for k, bh := range b.Connections {
		if ah, ok := a.Connections[k]; !ok || ah != bh {
			d.ConnsChanged = append(d.ConnsChanged, k)
		}
	}
	for k := range a.Connections {
		if _, ok := b.Connections[k]; !ok {
			d.ConnsChanged = append(d.ConnsChanged, k)
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Strings(d.ChangedBehavior)
	sort.Strings(d.ChangedMeta)
	sort.Strings(d.ConnsChanged)
	return d
}

// Touched counts the components the delta touches in any way —
// the ≤K gate for incremental re-assessment.
func (d *Delta) Touched() int {
	return len(d.Added) + len(d.Removed) + len(d.ChangedBehavior) + len(d.ChangedMeta)
}

// Identical reports a no-op delta.
func (d *Delta) Identical() bool {
	return d.Touched() == 0 && len(d.ConnsChanged) == 0 && !d.RequirementsChanged
}
