package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/obs"
)

func openT(t *testing.T, dir string, opts Options) *Cache {
	t.Helper()
	c, err := Open(dir, 0xabcd, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRoundtripInMemory(t *testing.T) {
	c := openT(t, t.TempDir(), Options{})
	if _, ok := c.Get([]byte("k")); ok {
		t.Fatal("empty cache must miss")
	}
	c.Put([]byte("k"), []byte("v"))
	got, ok := c.Get([]byte("k"))
	if !ok || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Duplicate Put is a no-op, not a second pending record.
	c.Put([]byte("k"), []byte("other"))
	if got, _ := c.Get([]byte("k")); !bytes.Equal(got, []byte("v")) {
		t.Fatalf("dup Put overwrote: %q", got)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir, Options{})
	for i := 0; i < 10; i++ {
		c.Put([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := openT(t, dir, Options{})
	defer c2.Close()
	if c2.Len() != 10 {
		t.Fatalf("reloaded %d entries, want 10", c2.Len())
	}
	for i := 0; i < 10; i++ {
		got, ok := c2.Get([]byte(fmt.Sprintf("key-%d", i)))
		if !ok || string(got) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key-%d: %q, %v", i, got, ok)
		}
	}
	st := c2.Stats()
	if st.SegmentsLoaded != 1 || st.RecordsLoaded != 10 || st.Quarantined != 0 {
		t.Fatalf("load stats = %+v", st)
	}
}

func TestNamespacesIsolate(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.Put([]byte("k"), []byte("va"))
	if _, ok := b.Get([]byte("k")); ok {
		t.Fatal("namespaces must not share entries")
	}
	a.Close()
	b.Close()
}

func TestAutoFlushAtThreshold(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir, Options{FlushEvery: 4})
	for i := 0; i < 9; i++ {
		c.Put([]byte{byte(i)}, []byte{byte(i)})
	}
	// 9 puts at FlushEvery=4 -> two auto-flushed segments, one pending.
	if st := c.Stats(); st.Flushes != 2 {
		t.Fatalf("flushes = %d, want 2", st.Flushes)
	}
	c.Close()
	segs, _ := filepath.Glob(filepath.Join(c.dir, "seg-*.rec"))
	if len(segs) != 3 {
		t.Fatalf("segments on disk = %d, want 3", len(segs))
	}
}

// TestCorruptByteQuarantine is the satellite table test: flipping any
// single byte of a segment must be detected, quarantined, and survived —
// never a crash, never silently-wrong data.
func TestCorruptByteQuarantine(t *testing.T) {
	build := func(t *testing.T) (dir, seg string) {
		dir = t.TempDir()
		c := openT(t, dir, Options{})
		for i := 0; i < 5; i++ {
			c.Put([]byte(fmt.Sprintf("key-%d", i)), bytes.Repeat([]byte{byte(i)}, 8))
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		segs, _ := filepath.Glob(filepath.Join(c.dir, "seg-*.rec"))
		if len(segs) != 1 {
			t.Fatalf("segments = %d", len(segs))
		}
		return dir, segs[0]
	}

	clean, cleanSeg := build(t)
	_ = clean
	data, err := os.ReadFile(cleanSeg)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		clean  bool // a header-only segment is legal: zero records, no quarantine
	}{
		{name: "header byte", mutate: func(d []byte) []byte { d[0] ^= 0xff; return d }},
		{name: "first record magic", mutate: func(d []byte) []byte { d[len(segMagic)] ^= 0xff; return d }},
		{name: "mid-segment byte", mutate: func(d []byte) []byte { d[len(d)/2] ^= 0x01; return d }},
		{name: "last checksum byte", mutate: func(d []byte) []byte { d[len(d)-1] ^= 0x01; return d }},
		{name: "truncated tail", mutate: func(d []byte) []byte { return d[:len(d)-3] }},
		{name: "truncated to header", mutate: func(d []byte) []byte { return d[:len(segMagic)] }, clean: true},
		{name: "empty file", mutate: func(d []byte) []byte { return nil }},
		{name: "trailing garbage", mutate: func(d []byte) []byte { return append(d, 0xde, 0xad) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, seg := build(t)
			mutated := tc.mutate(append([]byte(nil), data...))
			if err := os.WriteFile(seg, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			c, err := Open(dir, 0xabcd, Options{})
			if err != nil {
				t.Fatalf("Open after corruption must succeed, got %v", err)
			}
			defer c.Close()
			st := c.Stats()
			if tc.clean {
				if st.Quarantined != 0 || c.Len() != 0 {
					t.Fatalf("header-only segment: stats %+v len %d", st, c.Len())
				}
				return
			}
			if st.Quarantined != 1 {
				t.Fatalf("quarantined = %d, want 1 (stats %+v)", st.Quarantined, st)
			}
			if _, err := os.Stat(seg); !os.IsNotExist(err) {
				t.Fatal("corrupt segment must be moved out of the live set")
			}
			q, _ := filepath.Glob(filepath.Join(c.dir, quarantineDir, "*.quarantined"))
			if len(q) != 1 {
				t.Fatalf("quarantine dir holds %d files, want 1", len(q))
			}
			// Healed records must still answer correctly; every surviving
			// entry must be byte-exact, never garbage.
			for i := 0; i < 5; i++ {
				got, ok := c.Get([]byte(fmt.Sprintf("key-%d", i)))
				if ok && !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 8)) {
					t.Fatalf("key-%d healed to wrong value %q", i, got)
				}
			}
			if int64(c.Len()) != st.HealedRecords {
				t.Fatalf("len %d != healed %d", c.Len(), st.HealedRecords)
			}
		})
	}
}

// TestSelfHealRepersists proves the heal cycle closes: salvaged records
// from a quarantined segment are re-flushed into a clean segment, so a
// third Open sees them without any quarantine.
func TestSelfHealRepersists(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		c.Put([]byte(fmt.Sprintf("key-%d", i)), []byte{byte(i)})
	}
	c.Close()
	segs, _ := filepath.Glob(filepath.Join(c.dir, "seg-*.rec"))
	data, _ := os.ReadFile(segs[0])
	// Corrupt the tail: valid prefix survives, tail is lost.
	if err := os.WriteFile(segs[0], data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := openT(t, dir, Options{})
	healed := c2.Stats().HealedRecords
	if healed == 0 || healed >= 5 {
		t.Fatalf("healed = %d, want partial salvage", healed)
	}
	c2.Close() // flush re-persists the salvaged prefix

	c3 := openT(t, dir, Options{})
	defer c3.Close()
	st := c3.Stats()
	if st.Quarantined != 0 {
		t.Fatalf("after heal cycle, quarantined = %d, want 0", st.Quarantined)
	}
	if int64(c3.Len()) != healed {
		t.Fatalf("len = %d, want %d healed records", c3.Len(), healed)
	}
}

func TestJanitorRemovesTempFiles(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir, Options{})
	c.Put([]byte("k"), []byte("v"))
	c.Close()
	// A crash mid-write leaves a temp file behind...
	stray := filepath.Join(c.dir, "seg-000099.rec.12345"+tmpSuffix)
	if err := os.WriteFile(stray, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	// ...which the next Open's janitor removes without loading it.
	c2 := openT(t, dir, Options{})
	defer c2.Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("janitor left the stray temp file")
	}
	if c2.Len() != 1 {
		t.Fatalf("len = %d", c2.Len())
	}
}

func TestSegmentNamesNeverReused(t *testing.T) {
	dir := t.TempDir()
	c := openT(t, dir, Options{})
	c.Put([]byte("a"), []byte("1"))
	c.Flush()
	c.Put([]byte("b"), []byte("2"))
	c.Flush()
	c.Close()

	c2 := openT(t, dir, Options{})
	c2.Put([]byte("c"), []byte("3"))
	c2.Close()
	segs, _ := filepath.Glob(filepath.Join(c2.dir, "seg-*.rec"))
	if len(segs) != 3 {
		t.Fatalf("segments = %v, want 3 distinct", segs)
	}
}

func TestInjectedWriteFaults(t *testing.T) {
	t.Run("transient error keeps records pending", func(t *testing.T) {
		inj, err := faultinject.New(1, faultinject.SiteStoreWrite+"=transient@1")
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		c := openT(t, dir, Options{Injector: inj})
		c.Put([]byte("k"), []byte("v"))
		if err := c.Flush(); !faultinject.IsTransient(err) {
			t.Fatalf("want transient flush error, got %v", err)
		}
		// Retry succeeds: records were kept pending.
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		c.Close()
		c2 := openT(t, dir, Options{})
		defer c2.Close()
		if _, ok := c2.Get([]byte("k")); !ok {
			t.Fatal("record lost across injected transient")
		}
	})

	t.Run("torn write quarantined on next open", func(t *testing.T) {
		inj, err := faultinject.New(1, faultinject.SiteStoreWrite+"=torn@1")
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		c := openT(t, dir, Options{Injector: inj})
		for i := 0; i < 8; i++ {
			c.Put([]byte{byte(i)}, []byte{byte(i)})
		}
		if err := c.Flush(); err == nil {
			t.Fatal("torn flush must report an error")
		}
		// The torn half-segment is on disk at the final path — exactly a
		// crashed non-atomic writer. Close flushes the still-pending
		// records into a clean follow-up segment.
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}

		c2 := openT(t, dir, Options{})
		defer c2.Close()
		st := c2.Stats()
		if st.Quarantined != 1 {
			t.Fatalf("quarantined = %d, want 1 (%+v)", st.Quarantined, st)
		}
		for i := 0; i < 8; i++ {
			if got, ok := c2.Get([]byte{byte(i)}); !ok || !bytes.Equal(got, []byte{byte(i)}) {
				t.Fatalf("record %d lost after torn write: %q, %v", i, got, ok)
			}
		}
	})

	t.Run("injected read degrades to miss", func(t *testing.T) {
		inj, err := faultinject.New(1, faultinject.SiteStoreRead+"=err@2")
		if err != nil {
			t.Fatal(err)
		}
		c := openT(t, t.TempDir(), Options{Injector: inj})
		defer c.Close()
		c.Put([]byte("k"), []byte("v"))
		if _, ok := c.Get([]byte("k")); !ok {
			t.Fatal("arrival 1 should hit")
		}
		if _, ok := c.Get([]byte("k")); ok {
			t.Fatal("injected read fault must read as a miss")
		}
		if _, ok := c.Get([]byte("k")); !ok {
			t.Fatal("arrival 3 should hit again")
		}
	})
}

func TestObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c := openT(t, t.TempDir(), Options{Registry: reg})
	defer c.Close()
	c.Put([]byte("k"), []byte("v"))
	c.Get([]byte("k"))
	c.Get([]byte("zzz"))
	c.Flush()
	snap := reg.Snapshot().Counters
	if snap["store.puts"] != 1 || snap["store.hits"] != 1 || snap["store.misses"] != 1 || snap["store.flushes"] != 1 {
		t.Fatalf("registry snapshot = %v", snap)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := openT(t, t.TempDir(), Options{FlushEvery: 16})
	defer c.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := []byte(fmt.Sprintf("k-%d", i%64))
				if v, ok := c.Get(key); ok {
					if !strings.HasPrefix(string(v), "v-") {
						t.Errorf("garbage value %q", v)
						return
					}
				} else {
					c.Put(key, []byte(fmt.Sprintf("v-%d", i%64)))
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != 64 {
		t.Fatalf("len = %d, want 64", c.Len())
	}
}

func TestNilCacheIsInert(t *testing.T) {
	var c *Cache
	if _, ok := c.Get([]byte("k")); ok {
		t.Fatal("nil Get must miss")
	}
	c.Put([]byte("k"), []byte("v"))
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || (c.Stats() != Stats{}) {
		t.Fatal("nil cache must report nothing")
	}
}

func TestRecordRoundtrip(t *testing.T) {
	var buf []byte
	buf = appendRecord(buf, []byte("key"), []byte("value"))
	buf = appendRecord(buf, nil, nil) // empty key/val are legal
	k, v, rest, err := decodeRecord(buf)
	if err != nil || string(k) != "key" || string(v) != "value" {
		t.Fatalf("decode 1: %q %q %v", k, v, err)
	}
	k, v, rest, err = decodeRecord(rest)
	if err != nil || len(k) != 0 || len(v) != 0 || len(rest) != 0 {
		t.Fatalf("decode 2: %q %q rest=%d %v", k, v, len(rest), err)
	}
}
