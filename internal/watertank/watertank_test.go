package watertank

import (
	"strings"
	"testing"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/mitigation"
	"cpsrisk/internal/plant"
	"cpsrisk/internal/sysmodel"
)

func TestModelsValidate(t *testing.T) {
	types := Types()
	if err := Model().Validate(types); err != nil {
		t.Fatalf("flat model: %v", err)
	}
	h := HierarchicalModel()
	if err := h.Validate(types); err != nil {
		t.Fatalf("hierarchical model: %v", err)
	}
	if len(h.Composites()) != 1 {
		t.Fatalf("composites = %v", h.Composites())
	}
	if err := h.RefineAll(); err != nil {
		t.Fatalf("refine: %v", err)
	}
	if err := h.Validate(types); err != nil {
		t.Fatalf("refined model: %v", err)
	}
	if _, ok := h.Component("ews.os"); !ok {
		t.Error("refined model missing ews.os")
	}
}

// paperRows defines Table II of the paper: the fault-mode combinations and
// the expected violation vectors. Mitigations M1/M2 are "Active" in every
// row except S2 (the compromised-workstation attack is only possible
// without them); the mitigated analysis excludes S2, the unmitigated one
// contains it.
var paperRows = []struct {
	id       string
	faults   []string
	violated []string
}{
	{"S1", nil, nil},
	{"S2", []string{"F4"}, []string{"R1", "R2"}},
	{"S3", []string{"F1"}, nil},
	{"S4", []string{"F2"}, []string{"R1"}},
	{"S5", []string{"F2", "F3"}, []string{"R1", "R2"}},
	{"S6", []string{"F1", "F3"}, nil},
	{"S7", []string{"F1", "F2", "F3"}, []string{"R1", "R2"}},
}

func scenarioFor(labels []string) epa.Scenario {
	var sc epa.Scenario
	for _, l := range labels {
		sc = append(sc, FaultLabels[l])
	}
	return sc
}

// TestTableIIMatchesPaper reproduces every row of the paper's Table II
// with the native exhaustive analysis.
func TestTableIIMatchesPaper(t *testing.T) {
	eng, err := Engine()
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := hazard.Analyze(eng, PaperCandidates(), -1, Requirements())
	if err != nil {
		t.Fatal(err)
	}
	if len(analysis.Scenarios) != 16 { // 2^4 combinations of F1..F4
		t.Fatalf("scenario count = %d", len(analysis.Scenarios))
	}
	for _, row := range paperRows {
		sc := scenarioFor(row.faults)
		got, ok := analysis.ByScenario(sc)
		if !ok {
			t.Fatalf("row %s: scenario %v missing", row.id, sc)
		}
		if strings.Join(got.Violated, ",") != strings.Join(row.violated, ",") {
			t.Errorf("row %s (%v): violated = %v, want %v",
				row.id, row.faults, got.Violated, row.violated)
		}
	}
}

// The same rows through the ASP path (the paper's actual toolchain shape).
func TestTableIIViaASP(t *testing.T) {
	eng, err := Engine()
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := hazard.AnalyzeASP(eng, PaperCandidates(), -1, Requirements())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range paperRows {
		got, ok := analysis.ByScenario(scenarioFor(row.faults))
		if !ok {
			t.Fatalf("row %s missing", row.id)
		}
		if strings.Join(got.Violated, ",") != strings.Join(row.violated, ",") {
			t.Errorf("row %s: ASP violated = %v, want %v", row.id, got.Violated, row.violated)
		}
	}
}

// TestMitigationsExcludeS2 reproduces the mitigation columns of Table II:
// with M1 (user training) and M2 (endpoint security) active, the
// F4 candidate is blocked (paper: "if the analyst activates the potential
// mitigation in the model, it allows excluding this specific scenario").
func TestMitigationsExcludeS2(t *testing.T) {
	k := kb.MustDefaultKB()
	active := map[string]bool{"M-0917": true, "M-0949": true} // M1, M2
	remaining := mitigation.Filter(k, PaperCandidates(), active)
	if len(remaining) != 3 {
		t.Fatalf("remaining candidates = %v", remaining)
	}
	for _, m := range remaining {
		if m.Component == plant.CompEWS {
			t.Error("F4 must be blocked by M1+M2")
		}
	}
	// Without M2 the drive-by path stays open, so F4 remains potential.
	partial := mitigation.Filter(k, PaperCandidates(), map[string]bool{"M-0917": true})
	if len(partial) != 4 {
		t.Errorf("partial mitigation must keep F4: %v", partial)
	}
}

// TestEPAOverapproximatesPlant is the framework's central soundness
// property ("the method guarantees that no actual hazardous attack is
// overlooked"): every requirement violation observed on the concrete
// plant simulation under a scenario is flagged by the qualitative EPA
// analysis of the same scenario.
func TestEPAOverapproximatesPlant(t *testing.T) {
	eng, err := Engine()
	if err != nil {
		t.Fatal(err)
	}
	reqs := Requirements()
	injectables := []epa.Activation{
		{Component: plant.CompInValve, Fault: plant.FaultStuckOpen},
		{Component: plant.CompInValve, Fault: plant.FaultStuckClosed},
		{Component: plant.CompOutValve, Fault: plant.FaultStuckOpen},
		{Component: plant.CompOutValve, Fault: plant.FaultStuckClosed},
		{Component: plant.CompLevelSensor, Fault: plant.FaultNoSignal},
		{Component: plant.CompHMI, Fault: plant.FaultNoSignal},
		{Component: plant.CompEWS, Fault: plant.FaultCompromised},
		{Component: plant.CompInValveCtl, Fault: plant.FaultBadCommand},
		{Component: plant.CompOutValveCtl, Fault: plant.FaultBadCommand},
	}
	cfg := plant.DefaultConfig()
	n := len(injectables)
	for mask := 0; mask < 1<<uint(n); mask++ {
		var sc epa.Scenario
		var injs []plant.Injection
		for i := 0; i < n; i++ {
			if mask>>uint(i)&1 == 1 {
				a := injectables[i]
				sc = append(sc, a)
				injs = append(injs, plant.Injection{Component: a.Component, Fault: a.Fault})
			}
		}
		tr, err := plant.Simulate(cfg, injs)
		if err != nil {
			t.Fatal(err)
		}
		concreteR1 := tr.Overflowed()
		concreteR2 := concreteR1 && !tr.AlertedAfterOverflow()
		if !concreteR1 && !concreteR2 {
			continue
		}
		res, err := eng.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if concreteR1 && !hazard.Eval(reqs[0].Condition, sc, res) {
			t.Fatalf("scenario %s: concrete overflow not flagged by EPA", sc)
		}
		if concreteR2 && !hazard.Eval(reqs[1].Condition, sc, res) {
			t.Fatalf("scenario %s: concrete silent overflow not flagged by EPA", sc)
		}
	}
}

// Timed sensor loss overflows concretely; the qualitative analysis must
// flag it too (it abstracts from timing, so the scenario is flagged
// regardless of the injection step).
func TestEPAFlagsTimedSensorLoss(t *testing.T) {
	eng, err := Engine()
	if err != nil {
		t.Fatal(err)
	}
	cfg := plant.DefaultConfig()
	nominal, err := plant.Simulate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	fillStep := -1
	for _, s := range nominal.Steps {
		if s.InFlow > 0 {
			fillStep = s.T
			break
		}
	}
	tr, err := plant.Simulate(cfg, []plant.Injection{{
		Component: plant.CompLevelSensor, Fault: plant.FaultNoSignal, AtStep: fillStep + 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Overflowed() {
		t.Fatal("expected concrete overflow")
	}
	sc := epa.Scenario{{Component: plant.CompLevelSensor, Fault: plant.FaultNoSignal}}
	res, err := eng.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !hazard.Eval(Requirements()[0].Condition, sc, res) {
		t.Fatal("EPA must flag sensor loss as a potential overflow")
	}
}

// The refined workstation (Fig. 4): compromising the e-mail client alone
// propagates through browser and OS to the actuators, violating both
// requirements — the hierarchical counterpart of row S2.
func TestHierarchicalCompromiseChain(t *testing.T) {
	types := Types()
	m := HierarchicalModel()
	if err := m.RefineAll(); err != nil {
		t.Fatal(err)
	}
	eng, err := epa.NewEngine(m, Behaviors(types))
	if err != nil {
		t.Fatal(err)
	}
	sc := epa.Scenario{{Component: "ews.email_client", Fault: plant.FaultCompromised}}
	res, err := eng.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	reqs := Requirements()
	if !hazard.Eval(reqs[0].Condition, sc, res) {
		t.Error("refined chain must reach R1 violation")
	}
	if !hazard.Eval(reqs[1].Condition, sc, res) {
		t.Error("refined chain must reach R2 violation")
	}
	// The propagation path is explainable end to end.
	path := res.Path(plant.CompOutValve, "cmd", epa.ErrCompromise)
	if len(path) == 0 {
		t.Fatal("no provenance path")
	}
	var comps []string
	for _, st := range path {
		comps = append(comps, st.Port.Component)
	}
	joined := strings.Join(comps, ">")
	for _, want := range []string{"ews.email_client", "ews.browser", "ews.os", "out_valve_ctrl"} {
		if !strings.Contains(joined, want) {
			t.Errorf("path %s missing %s", joined, want)
		}
	}
}

// Risk ranking over the full candidate space: the attack scenario S2 (F4,
// single activation, medium likelihood) must outrank the triple physical
// coincidence S7.
func TestRiskRankingS2OverS7(t *testing.T) {
	eng, err := Engine()
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := hazard.Analyze(eng, PaperCandidates(), -1, Requirements())
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := analysis.ByScenario(scenarioFor([]string{"F4"}))
	s7, _ := analysis.ByScenario(scenarioFor([]string{"F1", "F2", "F3"}))
	if s2.Risk.Risk <= s7.Risk.Risk {
		t.Errorf("S2 risk %v must exceed S7 risk %v", s2.Risk.Risk, s7.Risk.Risk)
	}
	ranked := analysis.Ranked()
	if ranked[0].Scenario.Key() != scenarioFor([]string{"F4"}).Key() {
		t.Errorf("top-ranked scenario = %s", ranked[0].Scenario.Key())
	}
}

// The candidate generator derives the paper's candidates (plus more) from
// the model and the default KB.
func TestCandidatesFromModelAndKB(t *testing.T) {
	types := Types()
	m := Model()
	k := kb.MustDefaultKB()
	muts, err := faults.Candidates(m, types, k, faults.AllSources())
	if err != nil {
		t.Fatal(err)
	}
	byAct := map[epa.Activation]faults.Mutation{}
	for _, mu := range muts {
		byAct[mu.Activation] = mu
	}
	for label, act := range FaultLabels {
		if _, ok := byAct[act]; !ok {
			t.Errorf("candidate %s (%v) missing", label, act)
		}
	}
	// The public workstation's compromise candidate carries KB sources.
	f4 := byAct[FaultLabels["F4"]]
	hasKB := false
	for _, s := range f4.Sources {
		if s != "fault_mode" {
			hasKB = true
		}
	}
	if !hasKB {
		t.Errorf("F4 sources = %v", f4.Sources)
	}
	_ = sysmodel.SignalFlow // keep import if assertions change
}

func BenchmarkTableIINative(b *testing.B) {
	eng, err := Engine()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hazard.Analyze(eng, PaperCandidates(), -1, Requirements()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIIASP(b *testing.B) {
	eng, err := Engine()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hazard.AnalyzeASP(eng, PaperCandidates(), -1, Requirements()); err != nil {
			b.Fatal(err)
		}
	}
}
