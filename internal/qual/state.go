package qual

import "fmt"

// State is a qualitative state in the sense of qualitative process theory:
// a magnitude (region of a quantity space) together with a trend (sign of
// the derivative). A water level can be, e.g., {high, +} — in the "high"
// region and rising — which is exactly the information a preliminary hazard
// analysis needs ("the tank is high and filling" ⇒ overflow is reachable).
type State struct {
	Magnitude Level
	Trend     Sign
}

// NewState constructs a qualitative state.
func NewState(m Level, d Sign) State { return State{Magnitude: m, Trend: d} }

// String renders like "high/+".
func (st State) String() string { return fmt.Sprintf("%d/%s", st.Magnitude, st.Trend) }

// LabelIn renders the state with the labels of a scale, e.g. "high/+".
func (st State) LabelIn(s *Scale) string {
	return fmt.Sprintf("%s/%s", s.Label(st.Magnitude), st.Trend)
}

// Successors enumerates the qualitative states reachable in one qualitative
// time step under continuity: the magnitude may stay or move one region in
// the direction of the trend; the trend itself may change arbitrarily only
// through zero (continuity of the derivative). This is the transition
// relation qualitative simulation explores.
func (st State) Successors(s *Scale) []State {
	mags := []Level{st.Magnitude}
	switch st.Trend {
	case SignPos:
		if st.Magnitude < s.Max() {
			mags = append(mags, st.Magnitude+1)
		}
	case SignNeg:
		if st.Magnitude > 0 {
			mags = append(mags, st.Magnitude-1)
		}
	case SignUnknown:
		if st.Magnitude < s.Max() {
			mags = append(mags, st.Magnitude+1)
		}
		if st.Magnitude > 0 {
			mags = append(mags, st.Magnitude-1)
		}
	}
	trends := trendSuccessors(st.Trend)
	out := make([]State, 0, len(mags)*len(trends))
	for _, m := range mags {
		for _, d := range trends {
			out = append(out, State{Magnitude: m, Trend: d})
		}
	}
	return out
}

func trendSuccessors(d Sign) []Sign {
	switch d {
	case SignPos:
		return []Sign{SignPos, SignZero}
	case SignNeg:
		return []Sign{SignNeg, SignZero}
	case SignZero:
		return []Sign{SignZero, SignPos, SignNeg}
	default:
		return []Sign{SignUnknown, SignPos, SignZero, SignNeg}
	}
}

// AbstractPair abstracts a (value, derivative) sample into a qualitative
// state over the given quantity space.
func AbstractPair(q *QuantitySpace, value, derivative float64) State {
	return State{Magnitude: q.Abstract(value), Trend: SignOf(derivative)}
}

// AbstractTrace abstracts a sampled waveform into a deduplicated qualitative
// state sequence: consecutive samples mapping to the same qualitative state
// collapse into one (qualitative behaviours are sequences of distinct
// states). Derivatives are estimated by forward differences with deadband
// eps to suppress sampling noise.
func AbstractTrace(q *QuantitySpace, vs []float64, eps float64) []State {
	if len(vs) == 0 {
		return nil
	}
	states := make([]State, 0, 8)
	for i := range vs {
		var d float64
		switch {
		case i+1 < len(vs):
			d = vs[i+1] - vs[i]
		case i > 0:
			d = vs[i] - vs[i-1]
		}
		if d > -eps && d < eps {
			d = 0
		}
		st := AbstractPair(q, vs[i], d)
		if len(states) == 0 || states[len(states)-1] != st {
			states = append(states, st)
		}
	}
	return states
}
