package solver

import (
	"context"
	"fmt"
	"sort"

	"cpsrisk/internal/budget"
)

// lit is a propositional literal: +v for the positive, -v for the negative
// literal of variable v (v >= 1). litTrue is the pseudo-literal "constant
// true" used in support bookkeeping (never appears inside clauses).
type lit int

const litTrue lit = 0

func (l lit) variable() int { return abs(int(l)) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// watchIdx maps a literal to its watch-list slot: positive literals at 2v,
// negative at 2v+1.
func watchIdx(l lit) int {
	v := l.variable()
	if l > 0 {
		return 2 * v
	}
	return 2*v + 1
}

// clause is one disjunction of literals; lits[0] and lits[1] are the
// watched literals. Learned clauses additionally carry an activity score
// driving learned-DB reduction. local marks clauses that are NOT
// consequences of the ground program (blocking clauses, optimization
// bounds, and anything learned from them): a portfolio worker must never
// export a local clause, because another worker enumerating the same
// space still needs the models it excludes.
type clause struct {
	lits   []lit
	act    float64
	learnt bool
	local  bool
}

// sat is a CDCL SAT engine: two-watched-literal propagation, first-UIP
// conflict analysis with clause learning and non-chronological
// backjumping, EVSIDS activity-based branching with phase saving, Luby
// restarts, and activity-driven learned-clause DB reduction. It supports
// adding clauses mid-search (used for loop formulas, blocking clauses,
// and optimization bounds) and an objective propagator for
// branch-and-bound.
type sat struct {
	nVars   int
	clauses []*clause // problem clauses: permanent, incl. mid-search additions
	learnts []*clause // conflict-learned clauses, subject to DB reduction
	watches [][]*clause

	assign   []int8    // var -> 0 unknown, 1 true, -1 false
	level    []int     // var -> decision level it was assigned at
	reason   []*clause // var -> implying clause (nil: decision or unassigned)
	trail    []lit
	trailLim []int // decision-level start indices into trail

	qhead int

	// EVSIDS branching: a max-heap of variables ordered by activity,
	// ties broken by variable index for determinism. phase saves the
	// last polarity of each variable (-1 initially: prefer false, so
	// smaller answer sets are found first).
	activity []float64
	varInc   float64
	phase    []int8
	heap     []int
	heapPos  []int // var -> heap slot, -1 when absent

	claInc float64

	// Luby restart schedule (units of restartBase conflicts).
	lubySeq      int
	sinceRestart int64
	restartLimit int64

	// Learned-DB reduction threshold; 0 until the first search fixes it.
	maxLearnts int

	// Conflict-analysis scratch.
	seen    []bool
	markBuf []int8 // clause-simplification stamps: 0 none, 1 pos, 2 neg

	// Objective propagator (branch and bound).
	weight  []int64 // var -> objective weight of assigning true (0 if none)
	curCost int64
	bound   int64 // prune when curCost >= bound
	pruning bool

	// Assumption-based solving (multi-shot sessions): assumps are asserted
	// as pseudo-decisions at successive levels before any branching; a
	// falsified assumption ends the search with assumpFailed set and the
	// responsible assumption subset in finalCore (final-conflict analysis).
	assumps      []lit
	assumpFailed bool
	finalCore    []lit

	// costGuard, when nonzero, is appended to every objective-bound
	// conflict clause so the clause can be retired after the query (the
	// bound is query-local in a session; the guard literal is assumed
	// false during the query and asserted true afterwards).
	costGuard lit

	// Statistics.
	decisions, conflicts, propagations, restarts int64
	learned, backjumps, dbReductions             int64

	unsatRoot bool // an empty clause was added: trivially unsatisfiable

	// Portfolio diversification. Worker 0 keeps the engine defaults
	// (restartBase units, 0.95 decay, no randomness) so single-worker
	// behaviour is bit-identical to the pre-portfolio engine; helpers get
	// distinct profiles via diversify.
	restartUnit int64   // Luby unit in conflicts
	decayInv    float64 // 1/decay, applied per conflict
	rng         *prng   // nil: fully deterministic branching
	randPolPct  int     // percent of branch decisions taking a random polarity

	// Portfolio clause sharing. exch is the bounded broadcast ring shared
	// by all workers of one race (nil outside portfolio mode); exchCursor
	// is this worker's private read position. level0Tainted latches when a
	// local clause forces a level-0 assignment: from that point derived
	// clauses can silently depend on it (analysis skips level-0 literals),
	// so the worker stops exporting entirely rather than export unsound
	// clauses. sharedBound, when non-nil, is the race-wide best achieved
	// objective cost; workers adopt it to tighten their own pruning.
	exch          *exchange
	exchID        int
	exchCursor    uint64
	importTick    int
	level0Tainted bool
	sharedBound   *atomicInt64
	shExported    int64
	shImported    int64
	shDrops       int64

	// Resource governance: zero caps mean unlimited, nil ctx means no
	// cancellation. The context is polled every ctxPollInterval budget
	// checks to keep the hot loop cheap.
	maxDecisions, maxConflicts int64
	ctx                        context.Context
	ctxPolls                   int
}

// ctxPollInterval is how many search-loop iterations pass between
// context polls.
const ctxPollInterval = 64

// restartBase is the Luby restart unit, in conflicts.
const restartBase = 100

// checkBudget reports why the search must stop now (as an
// *budget.ExhaustedError with stage "solve"), or nil.
func (s *sat) checkBudget() error {
	if s.maxDecisions > 0 && s.decisions >= s.maxDecisions {
		return &budget.ExhaustedError{
			Stage: "solve", Reason: budget.ReasonDecisions,
			Detail: fmt.Sprintf("%d decisions", s.decisions),
		}
	}
	if s.maxConflicts > 0 && s.conflicts >= s.maxConflicts {
		return &budget.ExhaustedError{
			Stage: "solve", Reason: budget.ReasonConflicts,
			Detail: fmt.Sprintf("%d conflicts", s.conflicts),
		}
	}
	if s.ctx != nil {
		s.ctxPolls++
		if s.ctxPolls >= ctxPollInterval {
			s.ctxPolls = 0
			if err := s.ctx.Err(); err != nil {
				return budget.New(s.ctx, budget.Limits{}).Err("solve")
			}
		}
	}
	return nil
}

// applyBudget installs the caps of a budget (nil = unlimited) and
// forces an immediate context poll on the first check.
func (s *sat) applyBudget(b *budget.Budget) {
	if b == nil {
		return
	}
	l := b.Limits()
	s.maxDecisions = l.MaxDecisions
	s.maxConflicts = l.MaxConflicts
	s.ctx = b.Context()
	s.ctxPolls = ctxPollInterval
}

func newSAT() *sat {
	s := &sat{
		bound:        1 << 62,
		varInc:       1,
		claInc:       1,
		restartLimit: restartBase,
		restartUnit:  restartBase,
		decayInv:     1 / 0.95,
	}
	s.newVar() // allocate var 0 placeholder so vars start at 1
	return s
}

func (s *sat) newVar() int {
	v := s.nVars
	s.nVars++
	s.assign = append(s.assign, 0)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.weight = append(s.weight, 0)
	s.activity = append(s.activity, 0)
	s.phase = append(s.phase, -1)
	s.seen = append(s.seen, false)
	s.markBuf = append(s.markBuf, 0)
	s.heapPos = append(s.heapPos, -1)
	s.watches = append(s.watches, nil, nil)
	if v > 0 {
		s.heapInsert(v)
	}
	return v
}

func (s *sat) value(l lit) int8 {
	v := s.assign[l.variable()]
	if l < 0 {
		return -v
	}
	return v
}

func (s *sat) decisionLevel() int { return len(s.trailLim) }

// ---- branching heap -------------------------------------------------

func (s *sat) varLess(a, b int) bool {
	if s.activity[a] != s.activity[b] {
		return s.activity[a] > s.activity[b]
	}
	return a < b
}

func (s *sat) heapUp(i int) {
	v := s.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !s.varLess(v, s.heap[p]) {
			break
		}
		s.heap[i] = s.heap[p]
		s.heapPos[s.heap[i]] = i
		i = p
	}
	s.heap[i] = v
	s.heapPos[v] = i
}

func (s *sat) heapDown(i int) {
	v := s.heap[i]
	n := len(s.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s.varLess(s.heap[c+1], s.heap[c]) {
			c++
		}
		if !s.varLess(s.heap[c], v) {
			break
		}
		s.heap[i] = s.heap[c]
		s.heapPos[s.heap[i]] = i
		i = c
	}
	s.heap[i] = v
	s.heapPos[v] = i
}

func (s *sat) heapInsert(v int) {
	if s.heapPos[v] >= 0 {
		return
	}
	s.heap = append(s.heap, v)
	s.heapPos[v] = len(s.heap) - 1
	s.heapUp(len(s.heap) - 1)
}

func (s *sat) heapPop() int {
	v := s.heap[0]
	s.heapPos[v] = -1
	last := len(s.heap) - 1
	if last > 0 {
		s.heap[0] = s.heap[last]
		s.heapPos[s.heap[0]] = 0
	}
	s.heap = s.heap[:last]
	if last > 0 {
		s.heapDown(0)
	}
	return v
}

func (s *sat) varBump(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.heapPos[v] >= 0 {
		s.heapUp(s.heapPos[v])
	}
}

func (s *sat) varDecay() { s.varInc *= s.decayInv }

func (s *sat) claBump(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, lc := range s.learnts {
			lc.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *sat) claDecay() { s.claInc *= 1 / 0.999 }

// seedActivities installs the initial branching preference: earlier
// variables in order get infinitesimally higher starting activity, so the
// first decisions follow it until conflict-driven bumps take over.
func (s *sat) seedActivities(order []int) {
	const eps = 1e-9
	for i, v := range order {
		s.activity[v] = eps * float64(len(order)-i)
	}
	// Rebuild the heap under the new activities.
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.heapDown(i)
	}
}

// ---- clause management ----------------------------------------------

// attach installs watches on lits[0] and lits[1].
func (s *sat) attach(c *clause) {
	s.watches[watchIdx(c.lits[0])] = append(s.watches[watchIdx(c.lits[0])], c)
	s.watches[watchIdx(c.lits[1])] = append(s.watches[watchIdx(c.lits[1])], c)
}

// detach removes the clause from its two watch lists.
func (s *sat) detach(c *clause) {
	for _, l := range c.lits[:2] {
		ws := s.watches[watchIdx(l)]
		for i, wc := range ws {
			if wc == c {
				ws[i] = ws[len(ws)-1]
				s.watches[watchIdx(l)] = ws[:len(ws)-1]
				break
			}
		}
	}
}

// addClause installs a problem clause. At decision level 0 it simplifies
// against the fixed assignment; during search the caller must ensure the
// solver is backtracked (via backtrackForClause) until the clause is not
// conflicting.
func (s *sat) addClause(ls []lit) { s.addClauseTagged(ls, false) }

// addLocalClause installs a clause that is NOT a consequence of the
// ground program (blocking clause, exact-cost filter): it participates in
// search normally but taints everything learned from it against export.
func (s *sat) addLocalClause(ls []lit) { s.addClauseTagged(ls, true) }

func (s *sat) addClauseTagged(ls []lit, local bool) {
	// Simplify: drop duplicate literals; detect tautologies. markBuf
	// stamps variables with the polarity seen (1 pos, 2 neg). The input
	// slice is filtered in place and retained; callers always pass fresh
	// slices.
	out := ls[:0]
	taut := false
	for _, l := range ls {
		if l == litTrue {
			taut = true // clause contains constant true
			break
		}
		v := l.variable()
		stamp := int8(1)
		if l < 0 {
			stamp = 2
		}
		switch s.markBuf[v] {
		case 0:
			s.markBuf[v] = stamp
			out = append(out, l)
		case stamp:
			// duplicate literal
		default:
			taut = true // l and ¬l
		}
		if taut {
			break
		}
	}
	for _, l := range out {
		s.markBuf[l.variable()] = 0
	}
	if taut {
		return
	}
	if len(out) == 0 {
		s.unsatRoot = true
		return
	}
	if len(out) == 1 {
		// A unit clause holds in every model: restart to level 0 so the
		// assignment persists for the rest of the search.
		if s.decisionLevel() > 0 {
			s.restarts++
			s.cancelUntil(0)
		}
		switch s.value(out[0]) {
		case 1:
			return
		case -1:
			s.unsatRoot = true
			return
		}
		if local {
			s.level0Tainted = true
		}
		s.uncheckedEnqueue(out[0], nil)
		return
	}
	w1, w2 := s.pickWatches(out)
	out[0], out[w1] = out[w1], out[0]
	if w2 == 0 {
		w2 = w1
	}
	out[1], out[w2] = out[w2], out[1]
	c := &clause{lits: out, local: local}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	// If unit under the current assignment, enqueue with the clause as
	// reason.
	if s.value(out[0]) == 0 && s.value(out[1]) == -1 {
		if local && s.decisionLevel() == 0 {
			s.level0Tainted = true
		}
		s.uncheckedEnqueue(out[0], c)
	}
}

// pickWatches selects two watch positions: non-false literals first, then
// false literals assigned at the deepest levels (so the watches are the
// last to be unassigned on backtracking).
func (s *sat) pickWatches(c []lit) (int, int) {
	w1, w2 := -1, -1
	rank := func(i int) int {
		if s.value(c[i]) != -1 {
			return 1 << 30
		}
		return s.level[c[i].variable()]
	}
	for i := range c {
		switch {
		case w1 < 0 || rank(i) > rank(w1):
			w2 = w1
			w1 = i
		case w2 < 0 || rank(i) > rank(w2):
			w2 = i
		}
	}
	return w1, w2
}

// clauseStatus returns 1 if satisfied, -1 if conflicting (all false),
// 0 otherwise.
func (s *sat) clauseStatus(c []lit) int {
	allFalse := true
	for _, l := range c {
		switch s.value(l) {
		case 1:
			return 1
		case 0:
			allFalse = false
		}
	}
	if allFalse {
		return -1
	}
	return 0
}

func (s *sat) uncheckedEnqueue(l lit, from *clause) {
	v := l.variable()
	if l > 0 {
		s.assign[v] = 1
		s.curCost += s.weight[v]
	} else {
		s.assign[v] = -1
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; it returns the conflicting clause,
// or nil when a fixpoint is reached.
func (s *sat) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propagations++
		// Visit clauses watching ¬p.
		wi := watchIdx(-p)
		ws := s.watches[wi]
		kept := ws[:0]
		for n := 0; n < len(ws); n++ {
			c := ws[n]
			li := c.lits
			// Ensure li[0] is the other watch.
			if li[0] == -p {
				li[0], li[1] = li[1], li[0]
			}
			if s.value(li[0]) == 1 {
				kept = append(kept, c)
				continue
			}
			// Find a new watch.
			found := false
			for k := 2; k < len(li); k++ {
				if s.value(li[k]) != -1 {
					li[1], li[k] = li[k], li[1]
					s.watches[watchIdx(li[1])] = append(s.watches[watchIdx(li[1])], c)
					found = true
					break
				}
			}
			if found {
				continue
			}
			kept = append(kept, c)
			if s.value(li[0]) == -1 {
				// Conflict: restore remaining watches and fail.
				kept = append(kept, ws[n+1:]...)
				s.watches[wi] = kept
				return c
			}
			if c.local && len(s.trailLim) == 0 {
				// A local clause just forced a permanent (level-0) fact;
				// derived clauses can no longer be proven program-global.
				s.level0Tainted = true
			}
			s.uncheckedEnqueue(li[0], c)
		}
		s.watches[wi] = kept
	}
	return nil
}

// decide starts a new decision level with literal l.
func (s *sat) decide(l lit) {
	s.decisions++
	s.trailLim = append(s.trailLim, len(s.trail))
	s.uncheckedEnqueue(l, nil)
}

// cancelUntil undoes all decision levels above lvl, saving phases and
// restoring unassigned variables to the branching heap.
func (s *sat) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	limit := s.trailLim[lvl]
	for i := len(s.trail) - 1; i >= limit; i-- {
		l := s.trail[i]
		v := l.variable()
		if l > 0 {
			s.curCost -= s.weight[v]
		}
		s.phase[v] = s.assign[v]
		s.assign[v] = 0
		s.reason[v] = nil
		s.heapInsert(v)
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = limit
}

// analyze performs first-UIP conflict analysis. The conflicting clause
// must be falsified with at least one literal at the current decision
// level. It returns the learned clause (asserting literal first, a
// deepest-level literal second), the backjump level, and whether the
// derivation touched any local clause (tainting the result against
// portfolio export).
func (s *sat) analyze(confl *clause) ([]lit, int, bool) {
	learnt := make([]lit, 1, 8)
	counter := 0
	local := false
	p := litTrue
	idx := len(s.trail) - 1
	for {
		if confl.learnt {
			s.claBump(confl)
		}
		if confl.local {
			local = true
		}
		for _, q := range confl.lits {
			if q == p {
				continue
			}
			v := q.variable()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.varBump(v)
				if s.level[v] >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Walk back to the next marked trail literal.
		for !s.seen[s.trail[idx].variable()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.variable()
		s.seen[v] = false
		counter--
		if counter <= 0 {
			break
		}
		confl = s.reason[v]
	}
	learnt[0] = -p

	// Cheap self-subsumption minimization: a lower-level literal is
	// redundant when its reason is covered by the learned clause.
	clearVars := make([]int, 0, len(learnt))
	for _, l := range learnt[1:] {
		clearVars = append(clearVars, l.variable())
	}
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].variable()
		r := s.reason[v]
		redundant := r != nil
		if r != nil {
			for _, q := range r.lits {
				qv := q.variable()
				if qv == v {
					continue
				}
				if !s.seen[qv] && s.level[qv] > 0 {
					redundant = false
					break
				}
			}
		}
		if !redundant {
			learnt[j] = learnt[i]
			j++
		} else if r.local {
			// Minimization consumed a local reason: the shortened clause
			// now depends on it.
			local = true
		}
	}
	learnt = learnt[:j]
	for _, v := range clearVars {
		s.seen[v] = false
	}

	// Backjump level: the deepest level among the non-asserting
	// literals; move one such literal to the second watch slot.
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].variable()] > s.level[learnt[maxI].variable()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = s.level[learnt[1].variable()]
	}
	return learnt, bt, local
}

// analyzeFinal computes the subset of the assumption set responsible for
// falsifying assumption p (the unsat core): it walks the implication
// graph backwards from ¬p, collecting every assumption decision reached.
// At the moment a falsified assumption is detected, all decisions on the
// trail are assumptions (branching only starts after the full assumption
// prefix is asserted), so reason-less marked trail literals are exactly
// the core members.
func (s *sat) analyzeFinal(p lit) []lit {
	core := []lit{p}
	if s.decisionLevel() == 0 {
		return core
	}
	s.seen[p.variable()] = true
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].variable()
		if !s.seen[v] {
			continue
		}
		if r := s.reason[v]; r == nil {
			core = append(core, s.trail[i])
		} else {
			for _, q := range r.lits {
				if s.level[q.variable()] > 0 {
					s.seen[q.variable()] = true
				}
			}
		}
		s.seen[v] = false
	}
	s.seen[p.variable()] = false
	return core
}

// record installs a learned clause after backjumping and enqueues its
// asserting literal. Untainted short clauses are offered to the
// portfolio exchange.
func (s *sat) record(learnt []lit, local bool) {
	if len(learnt) == 1 {
		if local && s.decisionLevel() == 0 {
			s.level0Tainted = true
		}
		s.exportClause(learnt, local)
		s.uncheckedEnqueue(learnt[0], nil)
		return
	}
	c := &clause{lits: learnt, learnt: true, act: s.claInc, local: local}
	s.learnts = append(s.learnts, c)
	s.learned++
	s.attach(c)
	s.exportClause(learnt, local)
	s.uncheckedEnqueue(learnt[0], c)
}

// Export caps: a clause goes onto the exchange ring when it is short
// outright or glue-ish (low literal-block distance).
const (
	shareMaxLen = 24
	shareMaxLBD = 4
)

// exportClause publishes a freshly learned clause to the exchange when
// it is provably a program consequence (untainted, no tainted level-0
// facts) and short enough to be worth the receivers' import cost.
func (s *sat) exportClause(learnt []lit, local bool) {
	if s.exch == nil || local || s.level0Tainted || len(learnt) > shareMaxLen {
		return
	}
	if len(learnt) > 2 && s.lbd(learnt) > shareMaxLBD {
		return
	}
	s.exch.publish(s.exchID, learnt)
	s.shExported++
}

// lbd is the literal-block distance: the number of distinct decision
// levels among the clause's literals (quadratic scan; clauses here are
// shareMaxLen-bounded).
func (s *sat) lbd(ls []lit) int {
	n := 0
	for i, l := range ls {
		lv := s.level[l.variable()]
		dup := false
		for _, m := range ls[:i] {
			if s.level[m.variable()] == lv {
				dup = true
				break
			}
		}
		if !dup {
			n++
		}
	}
	return n
}

// handleConflict runs conflict analysis and backjumps. It returns false
// when the conflict proves the remaining space empty (conflict at level
// 0).
func (s *sat) handleConflict(confl *clause) bool {
	s.conflicts++
	s.sinceRestart++
	// Mid-search clause additions can surface conflicts below the
	// current decision level: drop to the deepest falsified level first
	// so first-UIP analysis sees a current-level literal.
	ml := 0
	for _, l := range confl.lits {
		if lv := s.level[l.variable()]; lv > ml {
			ml = lv
		}
	}
	if ml == 0 {
		return false
	}
	s.cancelUntil(ml)
	learnt, bt, local := s.analyze(confl)
	if s.decisionLevel()-bt > 1 {
		s.backjumps++
	}
	s.cancelUntil(bt)
	s.record(learnt, local)
	s.varDecay()
	s.claDecay()
	return true
}

// costConflict handles an objective-bound violation (curCost >= bound)
// as a conflict on the clause "some currently true weighted literal must
// be false". The clause is valid for the rest of the search because the
// bound only ever decreases. It returns false when no improving
// assignment exists.
func (s *sat) costConflict() bool {
	// Bound clauses derive from an incumbent model, not the program:
	// always local, whether or not a session guard is attached.
	c := clause{local: true}
	ml := 0
	for v := 1; v < s.nVars; v++ {
		if s.weight[v] > 0 && s.assign[v] == 1 {
			c.lits = append(c.lits, lit(-v))
			if lv := s.level[v]; lv > ml {
				ml = lv
			}
		}
	}
	if s.costGuard != 0 {
		// Session query: the bound clause is only valid while this query's
		// guard is assumed false; the guard literal makes it retirable.
		c.lits = append(c.lits, s.costGuard)
		if lv := s.level[s.costGuard.variable()]; lv > ml {
			ml = lv
		}
	}
	if len(c.lits) == 0 || ml == 0 {
		// The bound is beaten by level-0 cost alone: nothing better
		// exists anywhere in the space.
		return false
	}
	s.cancelUntil(ml)
	return s.handleConflict(&c)
}

// restart abandons the current assignment (keeping level 0 and all
// learned clauses) and bumps the Luby schedule.
func (s *sat) restart() {
	s.restarts++
	s.cancelUntil(0)
	s.sinceRestart = 0
	s.lubySeq++
	s.restartLimit = s.restartUnit * luby(s.lubySeq)
	// A restart is a free synchronization point: drain the exchange while
	// the trail is short.
	s.importShared()
}

// luby returns the i-th element (0-based) of the Luby restart sequence
// 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
func luby(i int) int64 {
	size, seq := 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i %= size
	}
	return int64(1) << seq
}

// reduceDB removes the less active half of the learned clauses, keeping
// binary clauses and clauses that are the reason of a current assignment.
func (s *sat) reduceDB() {
	s.dbReductions++
	sort.SliceStable(s.learnts, func(i, j int) bool {
		return s.learnts[i].act < s.learnts[j].act
	})
	half := len(s.learnts) / 2
	kept := s.learnts[:0]
	for i, c := range s.learnts {
		if i < half && len(c.lits) > 2 && !s.locked(c) {
			s.detach(c)
			continue
		}
		kept = append(kept, c)
	}
	s.learnts = kept
}

func (s *sat) locked(c *clause) bool {
	v := c.lits[0].variable()
	return s.assign[v] != 0 && s.reason[v] == c
}

// backtrackForClause backjumps until the given clause is no longer
// conflicting (or level 0 is reached while still conflicting; the caller
// then declares root unsatisfiability).
func (s *sat) backtrackForClause(c []lit) {
	for s.decisionLevel() > 0 && s.clauseStatus(c) == -1 {
		ml := 0
		for _, l := range c {
			if lv := s.level[l.variable()]; lv > ml {
				ml = lv
			}
		}
		if ml == 0 {
			return
		}
		s.cancelUntil(ml - 1)
	}
}

// pickBranchVar returns the unassigned variable with the highest
// activity, or 0 when the assignment is total.
func (s *sat) pickBranchVar() int {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assign[v] == 0 {
			return v
		}
	}
	return 0
}

// search runs CDCL until a total assignment satisfies all clauses,
// calling onTotal. onTotal returns "accept": if false (model rejected,
// e.g. a loop clause was added) the search continues from the (possibly
// backjumped) state; if true the search also continues (enumeration)
// after the caller installed a blocking clause. search returns when the
// space is exhausted or onTotal signals stop via the returned stop flag.
// A budget cap or cancellation aborts the search with an
// *budget.ExhaustedError; the caller decides whether models found so far
// constitute a usable partial answer.
func (s *sat) search(onTotal func() (stop bool)) error {
	if s.maxLearnts == 0 {
		s.maxLearnts = 300 + len(s.clauses)/3
	}
	for {
		if s.unsatRoot {
			return nil
		}
		if err := s.checkBudget(); err != nil {
			return err
		}
		if confl := s.propagate(); confl != nil {
			if !s.handleConflict(confl) {
				// A propagation conflict at level 0 refutes the permanent
				// clause DB itself (query-guarded clauses cannot be
				// falsified at level 0 unless their guard is a level-0
				// consequence, which likewise refutes the unguarded DB),
				// so later session queries can short-circuit.
				s.unsatRoot = true
				return nil
			}
			continue
		}
		if s.exch != nil {
			// Portfolio hooks, off the single-worker path entirely: adopt
			// the race-wide best bound, and periodically drain the clause
			// exchange (restarts also drain it).
			if s.sharedBound != nil && s.pruning {
				if sb := s.sharedBound.Load(); sb < s.bound {
					s.bound = sb
				}
			}
			s.importTick++
			if s.importTick >= importInterval {
				s.importTick = 0
				s.importShared()
				if s.unsatRoot {
					return nil
				}
				continue // imports may leave pending propagations
			}
		}
		if s.pruning && s.curCost >= s.bound {
			if !s.costConflict() {
				return nil
			}
			continue
		}
		if s.sinceRestart >= s.restartLimit && s.decisionLevel() > 0 {
			s.restart()
			continue
		}
		if len(s.learnts) >= s.maxLearnts {
			s.reduceDB()
			s.maxLearnts += s.maxLearnts / 10
		}
		// Assert pending assumptions as pseudo-decisions at successive
		// levels before any branching. Restarts and backjumps may cancel
		// them; they are simply re-asserted here. A falsified assumption
		// means the space under the assumption set is exhausted: final-
		// conflict analysis extracts the responsible subset (unsat core).
		if s.decisionLevel() < len(s.assumps) {
			p := s.assumps[s.decisionLevel()]
			switch s.value(p) {
			case 1:
				// Already implied: open a dummy level so deeper
				// backjumps cannot remove it without re-assertion.
				s.trailLim = append(s.trailLim, len(s.trail))
			case -1:
				s.finalCore = s.analyzeFinal(p)
				s.assumpFailed = true
				return nil
			default:
				s.decide(p)
			}
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			if onTotal() {
				return nil
			}
			if s.unsatRoot {
				return nil
			}
			// Continue: the callback added clauses or tightened the
			// bound; if the state is unchanged, total, and consistent
			// there is no way to force progress — the space is done.
			if s.qhead == len(s.trail) && len(s.heap) == 0 &&
				!(s.pruning && s.curCost >= s.bound) {
				return nil
			}
			continue
		}
		pol := s.phase[v] > 0
		if s.rng != nil && s.randPolPct > 0 && int(s.rng.next()%100) < s.randPolPct {
			pol = s.rng.next()&1 == 0
		}
		if pol {
			s.decide(lit(v))
		} else {
			s.decide(lit(-v))
		}
	}
}

func (s *sat) validateTotal() error {
	for ci, c := range s.clauses {
		if s.clauseStatus(c.lits) != 1 {
			return fmt.Errorf("solver: internal error: clause %d unsatisfied at total assignment", ci)
		}
	}
	return nil
}
