// Command riskassess runs the full assessment pipeline on a system model
// loaded from JSON: candidate-mutation generation from the built-in
// security knowledge base, exhaustive hazard identification against the
// model's LTLf requirements (interpreted as topology-criticality checks
// when no behaviour library exists), risk ranking, and mitigation
// optimization.
//
// Usage:
//
//	riskassess -model model.json -types types.json [-maxcard 2] [-asp]
//	           [-optimize] [-budget N] [-mitigations M-0917,M-0949]
//
// Requirements in the model file carry LTLf formulas for documentation;
// the generic violation condition used here flags a requirement when any
// component marked criticality H/VH exhibits any error mode.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cpsrisk/internal/core"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/report"
	"cpsrisk/internal/sysmodel"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "riskassess:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("riskassess", flag.ContinueOnError)
	modelPath := fs.String("model", "", "system model JSON (required)")
	typesPath := fs.String("types", "", "component-type library JSON (required)")
	maxCard := fs.Int("maxcard", 2, "maximum simultaneous activations (-1 = unbounded)")
	useASP := fs.Bool("asp", false, "use the ASP engine for hazard identification")
	doOpt := fs.Bool("optimize", false, "run mitigation cost-benefit optimization")
	budget := fs.Int("budget", -1, "mitigation budget (-1 = unlimited)")
	mitigations := fs.String("mitigations", "", "comma-separated active mitigation IDs")
	jsonOut := fs.Bool("json", false, "emit the machine-readable JSON summary instead of text")
	dotPath := fs.String("dot", "", "also write the model as GraphViz DOT to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" || *typesPath == "" {
		fs.Usage()
		return fmt.Errorf("-model and -types are required")
	}

	model, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	types, err := loadTypes(*typesPath)
	if err != nil {
		return err
	}
	reqs, err := genericRequirements(model)
	if err != nil {
		return err
	}
	active := map[string]bool{}
	if *mitigations != "" {
		for _, id := range strings.Split(*mitigations, ",") {
			active[strings.TrimSpace(id)] = true
		}
	}

	a, err := core.Run(core.Config{
		Model:             model,
		Types:             types,
		KB:                kb.MustDefaultKB(),
		Requirements:      reqs,
		MutationSources:   faults.AllSources(),
		ActiveMitigations: active,
		MaxCardinality:    *maxCard,
		UseASP:            *useASP,
		Optimize:          *doOpt,
		Budget:            *budget,
	})
	if err != nil {
		return err
	}

	if *dotPath != "" {
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		if err := model.WriteDOT(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *jsonOut {
		return a.WriteJSON(os.Stdout)
	}
	fmt.Print(a.Render())
	fmt.Println()
	fmt.Println("== Risk-prioritized scenarios ==")
	limit := a.Ranked
	if len(limit) > 20 {
		limit = limit[:20]
	}
	fmt.Println(report.Ranked(limit))
	return nil
}

func loadModel(path string) (*sysmodel.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sysmodel.ReadJSON(f)
}

func loadTypes(path string) (*sysmodel.TypeLibrary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sysmodel.ReadTypesJSON(f)
}

// genericRequirements derives one hazard requirement per model
// requirement: violated when any critical component (criticality H/VH)
// exhibits any error mode. Models without explicit requirements get a
// default integrity requirement over the critical assets.
func genericRequirements(m *sysmodel.Model) ([]hazard.Requirement, error) {
	var criticalConds []hazard.Condition
	for _, c := range m.Components {
		switch c.Attr("criticality") {
		case "H", "VH":
			for _, mode := range epa.AllModes {
				criticalConds = append(criticalConds, hazard.Comp(c.ID, mode))
			}
		}
	}
	if len(criticalConds) == 0 {
		return nil, fmt.Errorf("no component carries criticality H/VH; annotate the model")
	}
	cond := hazard.Any(criticalConds...)
	if len(m.Requirements) == 0 {
		return []hazard.Requirement{{
			ID:          "RC",
			Description: "critical assets must stay error free",
			Severity:    qual.High,
			Condition:   cond,
		}}, nil
	}
	five := qual.FiveLevel()
	out := make([]hazard.Requirement, 0, len(m.Requirements))
	for _, r := range m.Requirements {
		sev := qual.High
		if r.Severity != "" {
			l, err := five.Parse(r.Severity)
			if err != nil {
				return nil, fmt.Errorf("requirement %s: %w", r.ID, err)
			}
			sev = l
		}
		out = append(out, hazard.Requirement{
			ID:          r.ID,
			Description: r.Description,
			Severity:    sev,
			Condition:   cond,
		})
	}
	return out, nil
}
