package solver

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/logic"
)

// TestPortfolioDifferential runs the 600-program differential battery
// with a 4-worker portfolio and cross-checks the answer sets against the
// sequential solver (itself validated against brute force). Model sets
// must agree exactly; only enumeration order may differ across workers.
func TestPortfolioDifferential(t *testing.T) {
	const programs = 600
	rng := rand.New(rand.NewSource(20260806))
	for i := 0; i < programs; i++ {
		src := randomDiffProgram(rng, i)
		prog, err := logic.Parse(src)
		if err != nil {
			t.Fatalf("program %d: parse: %v\n%s", i, err, src)
		}
		gp, err := Ground(prog)
		if err != nil {
			t.Fatalf("program %d: ground: %v\n%s", i, err, src)
		}
		seq, err := Solve(gp, Options{})
		if err != nil {
			t.Fatalf("program %d: sequential solve: %v\n%s", i, err, src)
		}
		par, err := Solve(gp, Options{Workers: 4})
		if err != nil {
			t.Fatalf("program %d: portfolio solve: %v\n%s", i, err, src)
		}
		got, want := renderModelSet(par.Models), renderModelSet(seq.Models)
		if !equalStringSets(got, want) {
			t.Fatalf("program %d: answer sets disagree\nprogram:\n%s\nportfolio (%d): %v\nsequential (%d): %v",
				i, src, len(got), got, len(want), want)
		}
		if par.Satisfiable != seq.Satisfiable {
			t.Fatalf("program %d: Satisfiable=%v, want %v", i, par.Satisfiable, seq.Satisfiable)
		}
		if par.Stats.PortfolioWorkers != 3 {
			t.Fatalf("program %d: PortfolioWorkers=%d, want 3", i, par.Stats.PortfolioWorkers)
		}
	}
}

// TestPortfolioOptimizeDifferential cross-checks optimizing portfolio
// solves — optimum cost and the full optimal model set — against the
// sequential optimizer on a seeded battery with random weights.
func TestPortfolioOptimizeDifferential(t *testing.T) {
	const programs = 200
	rng := rand.New(rand.NewSource(20260808))
	atoms := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < programs; i++ {
		src := randomDiffProgram(rng, i*4) // propositional shapes only
		var min []string
		for _, a := range atoms {
			if rng.Intn(2) == 0 {
				min = append(min, fmt.Sprintf("%d,%s : %s", 1+rng.Intn(5), a, a))
			}
		}
		if len(min) == 0 {
			min = []string{"1,a : a"}
		}
		src += "#minimize { " + strings.Join(min, "; ") + " }.\n"
		seq, err := SolveSource(src, Options{Optimize: true})
		if err != nil {
			t.Fatalf("program %d: sequential solve: %v\n%s", i, err, src)
		}
		par, err := SolveSource(src, Options{Optimize: true, Workers: 4})
		if err != nil {
			t.Fatalf("program %d: portfolio solve: %v\n%s", i, err, src)
		}
		got, want := renderModelSet(par.Models), renderModelSet(seq.Models)
		if !equalStringSets(got, want) {
			t.Fatalf("program %d: optimal model sets disagree\nprogram:\n%s\nportfolio (%d): %v\nsequential (%d): %v",
				i, src, len(got), got, len(want), want)
		}
		if len(seq.Models) > 0 {
			sc, pc := seq.Models[0].Cost, par.Models[0].Cost
			if len(sc) != len(pc) || (len(sc) > 0 && sc[0] != pc[0]) {
				t.Fatalf("program %d: costs disagree: portfolio %+v vs sequential %+v\n%s", i, pc, sc, src)
			}
			if par.Optimal != seq.Optimal {
				t.Fatalf("program %d: Optimal=%v, want %v", i, par.Optimal, seq.Optimal)
			}
		}
	}
}

// TestPortfolioSessionDifferential is the session arm of the battery:
// portfolio sessions (3 engines racing every query, clause exchange
// across queries and Adds) must agree with fresh single-shot solves of
// the flattened program at every step.
func TestPortfolioSessionDifferential(t *testing.T) {
	const programs = 200
	rng := rand.New(rand.NewSource(20260807))
	for i := 0; i < programs; i++ {
		src := randomDiffProgram(rng, i)
		prog, err := logic.Parse(src)
		if err != nil {
			t.Fatalf("program %d: parse: %v\n%s", i, err, src)
		}
		atomPool := []string{"a", "b", "c", "d", "e"}
		if i%4 == 3 {
			atomPool = []string{"pick(1)", "pick(2)", "q(1)", "q(2)"}
		}
		chunks := make([]*logic.Program, 1+1+rng.Intn(3))
		for c := range chunks {
			chunks[c] = &logic.Program{}
		}
		for _, r := range prog.Rules {
			chunks[rng.Intn(len(chunks))].AddRule(r)
		}
		sess, err := NewSession(chunks[0], Options{Workers: 3})
		if err != nil {
			t.Fatalf("program %d: NewSession: %v\n%s", i, err, src)
		}
		flat := &logic.Program{}
		flat.Extend(chunks[0])
		for step := 1; ; step++ {
			var assumps []Assumption
			var constraints []logic.Rule
			for n := rng.Intn(3); n > 0; n-- {
				atom := atomPool[rng.Intn(len(atomPool))]
				var csrc string
				if rng.Intn(2) == 0 {
					assumps = append(assumps, AssumeTrue(atom))
					csrc = ":- not " + atom + "."
				} else {
					assumps = append(assumps, AssumeFalse(atom))
					csrc = ":- " + atom + "."
				}
				cprog, err := logic.Parse(csrc)
				if err != nil {
					t.Fatalf("program %d: parse constraint %q: %v", i, csrc, err)
				}
				constraints = append(constraints, cprog.Rules...)
			}
			want := solveFlattened(t, i, flat, constraints)
			for q := 0; q < 2; q++ { // twice: exercises guard retirement
				res, err := sess.SolveAssuming(assumps, Options{})
				if err != nil {
					t.Fatalf("program %d step %d: SolveAssuming: %v\n%s", i, step, err, src)
				}
				got := renderModelSet(res.Models)
				if !equalStringSets(got, want) {
					t.Fatalf("program %d step %d query %d: answer sets disagree\nprogram:\n%s\nassumptions: %v\nsession (%d): %v\nsingle-shot (%d): %v",
						i, step, q, src, assumps, len(got), got, len(want), want)
				}
			}
			if step >= len(chunks) {
				break
			}
			if err := sess.Add(chunks[step]); err != nil {
				t.Fatalf("program %d step %d: Add: %v\n%s", i, step, err, src)
			}
			flat.Extend(chunks[step])
		}
		sess.Close()
	}
}

// TestPortfolioDeterministicCollapses checks that Deterministic mode
// ignores Workers entirely: search effort (decisions, conflicts,
// restarts) and the model stream must be identical to a Workers=1 solve.
func TestPortfolioDeterministicCollapses(t *testing.T) {
	src := `
		d(1..6).
		{ pick(X) : d(X) }.
		q(X) :- d(X), not pick(X).
		:- pick(X), pick(Y), X < Y.
	`
	one, err := SolveSource(src, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	det, err := SolveSource(src, Options{Workers: 4, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	if det.Stats.PortfolioWorkers != 0 {
		t.Fatalf("deterministic solve launched %d helpers", det.Stats.PortfolioWorkers)
	}
	if det.Stats.Decisions != one.Stats.Decisions || det.Stats.Conflicts != one.Stats.Conflicts ||
		det.Stats.Restarts != one.Stats.Restarts {
		t.Fatalf("deterministic search diverged: det {d=%d c=%d r=%d} vs seq {d=%d c=%d r=%d}",
			det.Stats.Decisions, det.Stats.Conflicts, det.Stats.Restarts,
			one.Stats.Decisions, one.Stats.Conflicts, one.Stats.Restarts)
	}
	for i := range one.Models {
		if strings.Join(one.Models[i].Atoms, ",") != strings.Join(det.Models[i].Atoms, ",") {
			t.Fatalf("model %d differs between deterministic and sequential solve", i)
		}
	}
}

// TestPortfolioCancellationPrompt starts a 4-worker race on a hard
// unsatisfiable instance (pigeonhole, from budget_test.go) under a short
// wall-clock budget and requires the whole portfolio — all workers
// joined, result assembled — to return promptly after the deadline.
func TestPortfolioCancellationPrompt(t *testing.T) {
	prog, err := logic.Parse(pigeonhole(9))
	if err != nil {
		t.Fatal(err)
	}
	bud, cancel := budget.WithTimeout(context.Background(), budget.Limits{Timeout: 100 * time.Millisecond})
	defer cancel()
	start := time.Now()
	res, err := SolveProgram(prog, Options{Workers: 4, Budget: bud})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if !res.Interrupted {
		t.Fatalf("expected an interrupted result under a 100ms budget (elapsed %v)", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("portfolio took %v to unwind after a 100ms deadline", elapsed)
	}
	// Same promptness through a session query.
	sess, err := NewSession(prog, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	bud2, cancel2 := budget.WithTimeout(context.Background(), budget.Limits{Timeout: 100 * time.Millisecond})
	defer cancel2()
	start = time.Now()
	res, err = sess.SolveAssuming(nil, Options{Budget: bud2})
	elapsed = time.Since(start)
	if err != nil {
		t.Fatalf("session solve: %v", err)
	}
	if !res.Interrupted {
		t.Fatalf("expected an interrupted session result (elapsed %v)", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("session portfolio took %v to unwind after a 100ms deadline", elapsed)
	}
}

// TestSessionPortfolioPanicPoisons injects a panic into the first racing
// worker and requires the session to surface it as an error and refuse
// further use: a panicked engine's clause database cannot be trusted, so
// the whole portfolio session is poisoned, diagnosably.
func TestSessionPortfolioPanicPoisons(t *testing.T) {
	inj, err := faultinject.New(1, "solver.worker=panic@1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := faultinject.ContextWith(context.Background(), inj)
	bud := budget.New(ctx, budget.Limits{})
	prog, err := logic.Parse("{ a; b }.\n:- a, b.\n")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(prog, Options{Workers: 3, Budget: bud})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if _, err := sess.SolveAssuming(nil, Options{}); err == nil {
		t.Fatal("expected the injected worker panic to surface as an error")
	} else if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error does not identify the panic: %v", err)
	}
	if _, err := sess.SolveAssuming(nil, Options{}); err == nil {
		t.Fatal("session must be poisoned after a worker panic")
	} else if !strings.Contains(err.Error(), "unusable") {
		t.Fatalf("poisoned session error not diagnosable: %v", err)
	}
}

// TestPortfolioSharesClauses races four workers on an instance hard
// enough to force real learning and checks the exchange actually carried
// clauses: a dead pipe would silently degrade the portfolio to pure
// competition.
func TestPortfolioSharesClauses(t *testing.T) {
	res, err := SolveSource(pigeonhole(5), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfiable {
		t.Fatal("pigeonhole must be unsatisfiable")
	}
	if res.Stats.ClausesExported == 0 {
		t.Fatalf("no clauses exported across the portfolio: %+v", res.Stats)
	}
}

// TestPortfolioGovernorLimitsHelpers pins a two-worker governor (pool
// of one extra slot) to the budget context and checks that the
// portfolio degrades to primary + 1 helper instead of oversubscribing.
func TestPortfolioGovernorLimitsHelpers(t *testing.T) {
	gov := budget.NewGovernor(2)
	ctx := budget.ContextWithGovernor(context.Background(), gov)
	bud := budget.New(ctx, budget.Limits{})
	res, err := SolveSource("{ a; b; c }.\n:- a, b.\n", Options{Workers: 4, Budget: bud})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PortfolioWorkers != 1 {
		t.Fatalf("PortfolioWorkers=%d, want 1 (pool of 1 extra)", res.Stats.PortfolioWorkers)
	}
	if gov.InUse() != 0 {
		t.Fatalf("governor slots leaked: InUse=%d", gov.InUse())
	}
	if gov.Granted() != 1 || gov.Denied() != 2 {
		t.Fatalf("governor accounting off: granted=%d denied=%d, want 1/2", gov.Granted(), gov.Denied())
	}
	// A single-worker budget (sequential run / one core) must collapse
	// the portfolio entirely: no helpers time-sharing the one core.
	gov1 := budget.NewGovernor(1)
	bud1 := budget.New(budget.ContextWithGovernor(context.Background(), gov1), budget.Limits{})
	res, err = SolveSource("{ a; b; c }.\n:- a, b.\n", Options{Workers: 4, Budget: bud1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PortfolioWorkers != 0 {
		t.Fatalf("PortfolioWorkers=%d, want 0 under a limit-1 governor", res.Stats.PortfolioWorkers)
	}
}
