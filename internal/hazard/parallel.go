package hazard

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/obs"
)

// The parallel sweep fans the scenario stream out to a worker pool and
// merges per-scenario results back in enumeration order. It is
// observably identical to the sequential AnalyzeBudget — same S<n> IDs,
// same ordering, same risks, same budget and truncation semantics
// (largest fully-completed cardinality) — because:
//
//   - the producer assigns each scenario its 0-based stream position
//     (seq) before fan-out, and IDs derive from seq alone;
//   - the MaxScenarios cap is enforced by the producer, so exactly the
//     same prefix of the stream is analyzed as sequentially;
//   - the merge keeps only the contiguous prefix of completed scenarios
//     below the earliest failure/exhaustion, then applies the same
//     completed-cardinality fallback.
//
// Only the epa.Engine is shared between workers; it is immutable after
// construction and documented safe for concurrent Run calls.

// sweepChunkSize is how many scenarios ride one channel send. Scenario
// analyses are individually cheap (microseconds on small plants), so
// per-scenario channel operations dominated the parallel sweep and made
// it slower than sequential at high scenario counts; chunking amortizes
// the synchronization without changing which scenarios are analyzed or
// in what order they are merged.
const sweepChunkSize = 32

// sweepChunk is a contiguous run of scenarios starting at stream
// position baseSeq.
type sweepChunk struct {
	baseSeq int
	scs     []epa.Scenario
}

// sweepOutcome is one worker's verdict on a chunk: the results of the
// completed prefix, plus — if the chunk stopped early — the stream
// position of the first failed scenario with its truncation or error.
type sweepOutcome struct {
	baseSeq int
	srs     []ScenarioResult
	badSeq  int // first failed seq in the chunk, or -1
	trunc   *budget.Truncation
	err     error
}

// producerOutcome reports how enumeration ended: how many jobs were
// emitted and whether a cap or the budget stopped the stream.
type producerOutcome struct {
	emitted int
	trunc   *budget.Truncation
}

// AnalyzeParallel is Analyze with a worker pool of the given size
// sweeping the scenario space. parallelism <= 0 uses
// runtime.GOMAXPROCS(0); parallelism == 1 is exactly the sequential
// path. The output is deterministic and identical to Analyze.
func AnalyzeParallel(eng *epa.Engine, muts []faults.Mutation, maxCard int, reqs []Requirement, parallelism int) (*Analysis, error) {
	return AnalyzeParallelBudget(eng, muts, maxCard, reqs, nil, parallelism)
}

// AnalyzeParallelBudget is AnalyzeParallel under resource governance,
// with AnalyzeBudget's degradation semantics: the budget is polled per
// scenario (producer and workers), exhaustion truncates to the largest
// fully completed cardinality, and MaxScenarios caps the analyzed
// prefix deterministically.
func AnalyzeParallelBudget(eng *epa.Engine, muts []faults.Mutation, maxCard int, reqs []Requirement, bud *budget.Budget, parallelism int) (*Analysis, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism == 1 {
		return AnalyzeBudget(eng, muts, maxCard, reqs, bud)
	}
	if err := validateReqs(reqs); err != nil {
		return nil, err
	}
	start := time.Now()
	likelihoods := faults.LikelihoodIndex(muts)
	limits := bud.Limits()

	// Observability: one span per sweep and per worker, one span per
	// chunk when traced; metrics instruments are resolved once here and
	// updated at chunk granularity from the workers — the race test
	// hammers exactly this path. Untraced runs pay a nil check per chunk.
	obsCtx, sweepSpan := obs.StartSpan(bud.Context(), "sweep")
	defer sweepSpan.End()
	reg := obs.RegistryFromContext(obsCtx)
	cChunks := reg.Counter("sweep.chunks")
	hChunk := reg.Histogram("sweep.chunk_us")

	jobs := make(chan sweepChunk, parallelism*4)
	outcomes := make(chan sweepOutcome, parallelism*4)
	produced := make(chan producerOutcome, 1)

	// Producer: enumerate in order, batching scenarios into chunks tagged
	// with their starting stream position. Budget poll and scenario cap
	// live here, per scenario, so the analyzed prefix matches the
	// sequential sweep exactly.
	go func() {
		defer close(jobs)
		seq := 0
		var trunc *budget.Truncation
		chunk := sweepChunk{}
		flush := func() {
			if len(chunk.scs) > 0 {
				jobs <- chunk
				chunk = sweepChunk{}
			}
		}
		faults.EnumerateStream(muts, maxCard, func(sc epa.Scenario) bool {
			if limits.MaxScenarios > 0 && seq >= limits.MaxScenarios {
				trunc = &budget.Truncation{Stage: "hazard", Reason: budget.ReasonScenarios}
				trunc.Stamp(obsCtx)
				return false
			}
			if err := bud.Err("hazard"); err != nil {
				ex, _ := budget.Exhausted(err)
				trunc = &budget.Truncation{Stage: "hazard", Reason: ex.Reason}
				trunc.Stamp(obsCtx)
				return false
			}
			if len(chunk.scs) == 0 {
				chunk.baseSeq = seq
				chunk.scs = make([]epa.Scenario, 0, sweepChunkSize)
			}
			chunk.scs = append(chunk.scs, sc)
			if len(chunk.scs) == sweepChunkSize {
				flush()
			}
			seq++
			return true
		})
		flush()
		produced <- producerOutcome{emitted: seq, trunc: trunc}
	}()

	// Workers: one EPA run plus requirement evaluation per scenario,
	// against the shared immutable engine. A chunk stops at its first
	// failure — everything after it would be discarded by the merge
	// anyway.
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var wSpan *obs.Span
			wCtx := obsCtx
			if sweepSpan != nil {
				wSpan = sweepSpan.StartChild(fmt.Sprintf("worker#%d", w))
				wCtx = obs.ContextWithSpan(obsCtx, wSpan)
			}
			defer wSpan.End()
			for jb := range jobs {
				var cSpan *obs.Span
				if wSpan != nil {
					cSpan = wSpan.StartChild(fmt.Sprintf("chunk[%d+%d]", jb.baseSeq, len(jb.scs)))
				}
				chunkStart := time.Now()
				o := sweepOutcome{baseSeq: jb.baseSeq, badSeq: -1}
				for i, sc := range jb.scs {
					seq := jb.baseSeq + i
					if err := bud.Err("hazard"); err != nil {
						ex, _ := budget.Exhausted(err)
						o.badSeq = seq
						o.trunc = &budget.Truncation{Stage: "hazard", Reason: ex.Reason}
						o.trunc.Stamp(wCtx)
						break
					}
					res, err := eng.RunBudget(sc, bud)
					if err != nil {
						o.badSeq = seq
						if ex, ok := budget.Exhausted(err); ok {
							o.trunc = &budget.Truncation{Stage: "hazard", Reason: ex.Reason}
							o.trunc.Stamp(wCtx)
						} else {
							o.err = err
						}
						break
					}
					o.srs = append(o.srs, scoreResult(seq, sc, res, reqs, likelihoods))
				}
				cChunks.Inc()
				hChunk.Observe(time.Since(chunkStart).Microseconds())
				cSpan.End()
				outcomes <- o
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	// Merge: collect everything, then keep the contiguous prefix below
	// the earliest failure. Memory matches the sequential sweep, which
	// also materializes every kept result.
	completed := map[int][]ScenarioResult{}
	firstBad := math.MaxInt
	var badTrunc *budget.Truncation
	var badErr error
	for o := range outcomes {
		if len(o.srs) > 0 {
			completed[o.baseSeq] = o.srs
		}
		if o.badSeq >= 0 && o.badSeq < firstBad {
			firstBad = o.badSeq
			badTrunc, badErr = o.trunc, o.err
		}
	}
	prod := <-produced

	cut := prod.emitted
	trunc := prod.trunc
	if firstBad < cut {
		cut = firstBad
		trunc = badTrunc
		if badErr != nil {
			// Earliest event is a hard error: fail like the sequential
			// sweep would on that scenario.
			return nil, badErr
		}
	}
	out := &Analysis{Requirements: reqs}
merge:
	for seq := 0; seq < cut; {
		srs, ok := completed[seq]
		if !ok {
			// Defensive: a hole below the cut means a worker died
			// without reporting; treat the prefix up to it as the
			// result rather than mislabeling later scenarios.
			break
		}
		for _, sr := range srs {
			if seq >= cut {
				break merge
			}
			out.Scenarios = append(out.Scenarios, sr)
			seq++
		}
	}
	if trunc != nil {
		out.Truncation = trunc
		out.truncateToCompletedCardinality(muts, maxCard)
	}
	out.Sweep = &SweepStats{Workers: parallelism, Scenarios: len(out.Scenarios), Duration: time.Since(start)}
	publishSweep(reg, out.Sweep, prod.emitted)
	return out, nil
}
