package cegar

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"cpsrisk/internal/budget"
)

// TestRunParallelMatchesSequential validates that the concurrent
// counterexample validation produces exactly the sequential verdicts, in
// the same order, on the two-level case-study loop.
func TestRunParallelMatchesSequential(t *testing.T) {
	want, err := Run(levels(t), NewPlantOracle(), -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, runtime.NumCPU() + 1} {
		got, err := RunParallel(levels(t), NewPlantOracle(), -1, nil, par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(got.Findings, want.Findings) {
			t.Errorf("parallelism %d: findings differ:\n%v\nvs\n%v", par, got.Findings, want.Findings)
		}
		if got.Iterations != want.Iterations ||
			!reflect.DeepEqual(got.PerLevelFindings, want.PerLevelFindings) {
			t.Errorf("parallelism %d: loop shape differs: %+v vs %+v", par, got, want)
		}
	}
}

// TestRunParallelExhaustionRoutesToUndetermined: a pre-cancelled budget
// must route every finding of the first level to expert review, under
// any parallelism, without hanging.
func TestRunParallelExhaustionRoutesToUndetermined(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bud := budget.New(ctx, budget.Limits{})
	res, err := RunParallel(levels(t), NewPlantOracle(), -1, bud, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Findings {
		if j.Verdict != Undetermined {
			t.Errorf("finding %v: verdict %v, want undetermined under exhausted budget", j.Finding, j.Verdict)
		}
	}
	if len(res.Truncations) == 0 {
		t.Error("expected truncations to be recorded")
	}
}
