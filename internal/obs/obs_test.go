package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeShape(t *testing.T) {
	tr := New("root")
	a := tr.Root().StartChild("a")
	a1 := a.StartChild("a1")
	a1.End()
	a.End()
	b := tr.Root().StartChild("b")
	b.End()
	tr.Finish()

	snap := tr.Snapshot()
	if snap.Name != "root" || len(snap.Children) != 2 {
		t.Fatalf("bad tree: %+v", snap)
	}
	if snap.Children[0].Name != "a" || snap.Children[1].Name != "b" {
		t.Errorf("children out of order: %s, %s", snap.Children[0].Name, snap.Children[1].Name)
	}
	if snap.Count("a1") != 1 || snap.Find("a1") == nil {
		t.Error("a1 missing")
	}
	if snap.Children[0].Children[0].Name != "a1" {
		t.Error("a1 not under a")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	var sp *Span
	var reg *Registry
	sp = tr.Root().StartChild("x")
	sp.End()
	if sp != nil || tr.Snapshot() != nil || tr.Finish() != 0 {
		t.Error("nil trace must be inert")
	}
	if sp.Name() != "" || sp.Path() != "" || sp.Duration() != 0 || sp.TraceElapsed() != 0 {
		t.Error("nil span accessors must return zero values")
	}
	reg.Counter("c").Add(3)
	reg.Gauge("g").Set(3)
	reg.Histogram("h").Observe(3)
	if reg.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
	ctx := ContextWithSpan(context.Background(), nil)
	ctx = ContextWithRegistry(ctx, nil)
	ctx2, s := StartSpan(ctx, "y")
	if s != nil || ctx2 != ctx {
		t.Error("StartSpan without a trace must be a no-op")
	}
	if SpanFromContext(nil) != nil || RegistryFromContext(nil) != nil {
		t.Error("nil context lookups must return nil")
	}
}

func TestContextCarrying(t *testing.T) {
	tr := New("root")
	ctx := ContextWithSpan(context.Background(), tr.Root())
	ctx, sp := StartSpan(ctx, "stage")
	if sp == nil || SpanFromContext(ctx) != sp {
		t.Fatal("span not carried")
	}
	_, sub := StartSpan(ctx, "sub")
	if sub.Path() != "root/stage/sub" {
		t.Errorf("path = %q", sub.Path())
	}
	sub.End()
	sp.End()

	reg := NewRegistry()
	ctx = ContextWithRegistry(ctx, reg)
	RegistryFromContext(ctx).Counter("hits").Inc()
	if reg.Counter("hits").Value() != 1 {
		t.Error("registry not carried")
	}
}

func TestIdempotentEnd(t *testing.T) {
	tr := New("root")
	sp := tr.Root().StartChild("s")
	sp.End()
	d := sp.Duration()
	time.Sleep(2 * time.Millisecond)
	sp.End() // second End must not move the end time
	if sp.Duration() != d {
		t.Error("End not idempotent")
	}
}

type recordingHook struct {
	mu      sync.Mutex
	started []string
	ended   []string
}

func (h *recordingHook) SpanStart(s *Span) {
	h.mu.Lock()
	h.started = append(h.started, s.Name())
	h.mu.Unlock()
}
func (h *recordingHook) SpanEnd(s *Span) {
	h.mu.Lock()
	h.ended = append(h.ended, s.Name())
	h.mu.Unlock()
}

func TestHooks(t *testing.T) {
	tr := New("root")
	h := &recordingHook{}
	tr.AddHook(h)
	a := tr.Root().StartChild("a")
	b := a.StartChild("b")
	b.End()
	a.End()
	if strings.Join(h.started, ",") != "a,b" {
		t.Errorf("started = %v", h.started)
	}
	if strings.Join(h.ended, ",") != "b,a" {
		t.Errorf("ended = %v", h.ended)
	}
}

func TestConcurrentSpansAndMetrics(t *testing.T) {
	tr := New("root")
	reg := NewRegistry()
	parent := tr.Root().StartChild("parallel")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("shared")
			h := reg.Histogram("obs")
			for i := 0; i < 200; i++ {
				sp := parent.StartChild("work")
				c.Inc()
				h.Observe(int64(i))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	parent.End()
	tr.Finish()
	snap := tr.Snapshot()
	if got := snap.Count("work"); got != 1600 {
		t.Errorf("work spans = %d", got)
	}
	ms := reg.Snapshot()
	if ms.Counters["shared"] != 1600 {
		t.Errorf("counter = %d", ms.Counters["shared"])
	}
	hs := ms.Histograms["obs"]
	if hs.Count != 1600 || hs.Min != 0 || hs.Max != 199 {
		t.Errorf("histogram = %+v", hs)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{0, -5, 1, 2, 3, 4, 1000, 1 << 62} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	var total int64
	r := NewRegistry()
	hh := r.Histogram("x")
	for _, v := range []int64{0, -5, 1, 2, 3, 4, 1000, 1 << 62} {
		hh.Observe(v)
	}
	hs := r.Snapshot().Histograms["x"]
	for _, b := range hs.Buckets {
		if b.Lo >= b.Hi {
			t.Errorf("bad bucket bounds [%d,%d)", b.Lo, b.Hi)
		}
		total += b.Count
	}
	if total != 8 {
		t.Errorf("bucket counts sum to %d", total)
	}
	if hs.Min != -5 || hs.Max != 1<<62 {
		t.Errorf("min/max = %d/%d", hs.Min, hs.Max)
	}
}

func TestTreeRenderFoldsRepeats(t *testing.T) {
	tr := New("root")
	st := tr.Root().StartChild("stage")
	for i := 0; i < 5; i++ {
		st.StartChild("chunk[0+32]").End()
	}
	st.End()
	tr.Finish()
	out := tr.Snapshot().Tree()
	if !strings.Contains(out, "chunk ×5") {
		t.Errorf("repeated spans not folded:\n%s", out)
	}
	if !strings.Contains(out, "root") || !strings.Contains(out, "stage") {
		t.Errorf("tree missing nodes:\n%s", out)
	}
}

func TestChromeExportRoundTrip(t *testing.T) {
	tr := New("root")
	st := tr.Root().StartChild("stage")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := st.StartChild("worker")
			time.Sleep(time.Millisecond)
			sp.StartChild("inner").End()
			sp.End()
		}()
	}
	wg.Wait()
	st.End()
	tr.Finish()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	pairs, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("invalid chrome trace: %v\n%s", err, buf.String())
	}
	// root + stage + 4 workers + 4 inners
	if pairs != 10 {
		t.Errorf("pairs = %d", pairs)
	}
}

func TestChromeExportSyntheticOverlap(t *testing.T) {
	// Hand-built snapshot with heavy sibling overlap, exercising the lane
	// spiller deterministically.
	root := &SpanSnapshot{Name: "r", StartUS: 0, DurUS: 100, Children: []*SpanSnapshot{
		{Name: "a", StartUS: 0, DurUS: 60, Children: []*SpanSnapshot{
			{Name: "a1", StartUS: 5, DurUS: 20},
			{Name: "a2", StartUS: 10, DurUS: 30}, // overlaps a1
			{Name: "a3", StartUS: 15, DurUS: 40}, // overlaps a1 and a2
		}},
		{Name: "b", StartUS: 30, DurUS: 50}, // overlaps a
		{Name: "c", StartUS: 70, DurUS: 20}, // fits after a in lane 0
	}}
	var buf bytes.Buffer
	if err := WriteChromeTraceSnapshot(&buf, root); err != nil {
		t.Fatal(err)
	}
	pairs, err := ValidateChromeTrace(&buf)
	if err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if pairs != 7 {
		t.Errorf("pairs = %d", pairs)
	}
}

func TestValidateChromeTraceRejectsBadFiles(t *testing.T) {
	cases := map[string]string{
		"unmatched E":    `{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}]}`,
		"name mismatch":  `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1},{"name":"y","ph":"E","ts":2,"pid":1,"tid":1}]}`,
		"unclosed B":     `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1}]}`,
		"time reversal":  `{"traceEvents":[{"name":"x","ph":"B","ts":5,"pid":1,"tid":1},{"name":"x","ph":"E","ts":3,"pid":1,"tid":1}]}`,
		"unknown phase":  `{"traceEvents":[{"name":"x","ph":"Z","ts":1,"pid":1,"tid":1}]}`,
		"missing name":   `{"traceEvents":[{"ph":"B","ts":1,"pid":1,"tid":1}]}`,
		"not trace json": `"hello"`,
	}
	for label, src := range cases {
		if _, err := ValidateChromeTrace(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
	// Bare-array form is accepted.
	if _, err := ValidateChromeTrace(strings.NewReader(
		`[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1},{"name":"x","ph":"E","ts":2,"pid":1,"tid":1}]`)); err != nil {
		t.Errorf("bare array rejected: %v", err)
	}
}
