package serve

import (
	"sync"
	"time"
)

// Critical-event classes — the taxonomy of service outcomes that count
// against the SLO. Modeled on production risk-mitigation practice: the
// remediation loop is driven by a hard ceiling on classified critical
// events per rolling window, which is only enforceable because every
// event is classified and countable.
const (
	// EventPanic is a panic recovered inside a handler or a job.
	EventPanic = "panic-recovered"
	// EventBudgetDegraded is an assessment truncated by its resource
	// budget (partial results served).
	EventBudgetDegraded = "budget-degraded"
	// EventCacheQuarantine is a corrupt persistent-cache segment
	// quarantined during a job's sweep.
	EventCacheQuarantine = "cache-quarantine"
	// EventFaultTrip is a deterministic fault-injection site firing in a
	// production-armed process (chaos drills count against the window on
	// purpose — a drill that degrades service is a degradation).
	EventFaultTrip = "fault-trip"
	// EventServerError is any 5xx response.
	EventServerError = "5xx"
)

// DefaultSLOWindow and DefaultSLOThreshold mirror the exemplar
// remediation program's SLO: fewer than 5 critical events per 7-day
// rolling window.
const (
	DefaultSLOWindow    = 7 * 24 * time.Hour
	DefaultSLOThreshold = 5
)

// sloRingCap bounds the journal: events beyond the cap evict the oldest
// entries. The count within the window saturates at the cap, which is
// fine — any realistic threshold is orders of magnitude below it.
const sloRingCap = 1024

// CriticalEvent is one journal entry.
type CriticalEvent struct {
	Time    time.Time `json:"time"`
	Class   string    `json:"class"`
	TraceID string    `json:"traceId,omitempty"`
	Tenant  string    `json:"tenant,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// SLOMonitor is the ring-buffered critical-event journal plus the
// rolling-window compliance check. Safe for concurrent use.
type SLOMonitor struct {
	mu        sync.Mutex
	window    time.Duration
	threshold int
	now       func() time.Time
	ring      [sloRingCap]CriticalEvent
	next      int // ring cursor
	total     int64
	byClass   map[string]int64
}

// NewSLOMonitor creates a monitor for the given rolling window and
// threshold (<= 0 pick the defaults). now overrides the clock for tests
// (nil = time.Now).
func NewSLOMonitor(window time.Duration, threshold int, now func() time.Time) *SLOMonitor {
	if window <= 0 {
		window = DefaultSLOWindow
	}
	if threshold <= 0 {
		threshold = DefaultSLOThreshold
	}
	if now == nil {
		now = time.Now
	}
	return &SLOMonitor{window: window, threshold: threshold, now: now, byClass: map[string]int64{}}
}

// Record journals one critical event.
func (m *SLOMonitor) Record(class, traceID, tenant, detail string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ring[m.next%sloRingCap] = CriticalEvent{
		Time: m.now(), Class: class, TraceID: traceID, Tenant: tenant, Detail: detail,
	}
	m.next++
	m.total++
	m.byClass[class]++
}

// windowCountLocked counts journaled events inside the rolling window.
func (m *SLOMonitor) windowCountLocked() int {
	cutoff := m.now().Add(-m.window)
	n := m.next
	if n > sloRingCap {
		n = sloRingCap
	}
	count := 0
	for i := 0; i < n; i++ {
		if m.ring[i].Time.After(cutoff) {
			count++
		}
	}
	return count
}

// WindowCount returns the number of critical events inside the rolling
// window (saturating at the ring capacity).
func (m *SLOMonitor) WindowCount() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.windowCountLocked()
}

// Compliant reports whether the rolling window is under the threshold.
func (m *SLOMonitor) Compliant() bool {
	if m == nil {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.windowCountLocked() < m.threshold
}

// SLOReport is the GET /v1/slo body.
type SLOReport struct {
	Compliant   bool             `json:"compliant"`
	WindowHours float64          `json:"windowHours"`
	Threshold   int              `json:"threshold"`
	WindowCount int              `json:"windowCount"`
	TotalCount  int64            `json:"totalCount"`
	ByClass     map[string]int64 `json:"byClass,omitempty"`
	// Recent lists the newest journaled events, newest first (capped).
	Recent []CriticalEvent `json:"recent,omitempty"`
}

// Report snapshots the monitor state. recentMax caps the Recent list
// (<= 0 means 20).
func (m *SLOMonitor) Report(recentMax int) SLOReport {
	if recentMax <= 0 {
		recentMax = 20
	}
	if m == nil {
		return SLOReport{Compliant: true}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := SLOReport{
		WindowHours: m.window.Hours(),
		Threshold:   m.threshold,
		WindowCount: m.windowCountLocked(),
		TotalCount:  m.total,
	}
	out.Compliant = out.WindowCount < m.threshold
	if len(m.byClass) > 0 {
		out.ByClass = make(map[string]int64, len(m.byClass))
		for k, v := range m.byClass {
			out.ByClass[k] = v
		}
	}
	n := m.next
	if n > sloRingCap {
		n = sloRingCap
	}
	for i := 0; i < n && len(out.Recent) < recentMax; i++ {
		// Walk backwards from the newest entry.
		idx := ((m.next - 1 - i) % sloRingCap + sloRingCap) % sloRingCap
		out.Recent = append(out.Recent, m.ring[idx])
	}
	return out
}
