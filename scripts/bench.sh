#!/bin/sh
# bench.sh runs the perf-tracked benchmark suite (the scalability sweeps
# S1-S3, the multi-shot solving pair S4, and the Fig. 1 end-to-end
# pipeline, plus the observability on/off overhead pair) with -benchmem
# and files the numbers into the BENCH_PR5.json ledger via cmd/benchjson.
# CI and `make bench` both run exactly this script.
#
#   BENCH_LABEL=after ./scripts/bench.sh         # label in the ledger (default: after)
#   BENCH_OUT=BENCH_PR5.json ./scripts/bench.sh  # ledger file (default: BENCH_PR5.json)
#   BENCHTIME=2s ./scripts/bench.sh              # per-benchmark time (default: 1s)
set -eu

cd "$(dirname "$0")/.."

label="${BENCH_LABEL:-after}"
out="${BENCH_OUT:-BENCH_PR5.json}"
benchtime="${BENCHTIME:-1s}"
pattern='BenchmarkS1_SolverScaling|BenchmarkS2_EPAScaling|BenchmarkS3_ScenarioSpace|BenchmarkS4_MultiShot|BenchmarkFig1_PipelineEndToEnd|BenchmarkObsOverhead'

echo "== bench (${benchtime} each) -> ${out} [${label}] =="
go test -run='^$' -bench="$pattern" -benchmem -benchtime="$benchtime" . \
  | go run ./cmd/benchjson -label "$label" -out "$out"
