package optimize

import (
	"strings"
	"testing"

	"cpsrisk/internal/mitigation"
	"cpsrisk/internal/solver"
)

// sample problem: three mitigations, three scenarios.
//
//	m1 (cost 20) blocks s1 (loss 100)
//	m2 (cost 45) blocks s2 (loss 200)
//	m3 (cost 90) blocks s3 (loss 50)  -> not worth buying
func sample() *Problem {
	return &Problem{
		Options: []Option{
			{ID: "m1", Cost: 20},
			{ID: "m2", Cost: 45},
			{ID: "m3", Cost: 90},
		},
		Scenarios: []mitigation.ScenarioLoss{
			{ID: "s1", Loss: 100, Activations: [][][]string{{{"m1"}}}},
			{ID: "s2", Loss: 200, Activations: [][][]string{{{"m2"}}}},
			{ID: "s3", Loss: 50, Activations: [][][]string{{{"m3"}}}},
		},
		Budget: -1,
	}
}

func TestOptimalUnlimitedBudget(t *testing.T) {
	p := sample()
	plan, err := p.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(plan.Selected, ",") != "m1,m2" {
		t.Fatalf("selected = %v", plan.Selected)
	}
	if plan.Cost != 65 || plan.ResidualLoss != 50 || plan.Total != 115 {
		t.Fatalf("plan = %+v", plan)
	}
	if strings.Join(plan.Blocked, ",") != "s1,s2" {
		t.Fatalf("blocked = %v", plan.Blocked)
	}
}

func TestOptimalBudgetConstrained(t *testing.T) {
	p := sample()
	p.Budget = 50
	plan, err := p.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	// Within 50 the best single purchase is m2 (blocks 200 for 45).
	if strings.Join(plan.Selected, ",") != "m2" {
		t.Fatalf("selected = %v (plan %+v)", plan.Selected, plan)
	}
	if plan.Cost > 50 {
		t.Fatalf("budget violated: %+v", plan)
	}
}

func TestOptimalZeroBudgetBuysNothing(t *testing.T) {
	p := sample()
	p.Budget = 0
	plan, err := p.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Selected) != 0 || plan.ResidualLoss != 350 {
		t.Fatalf("plan = %+v", plan)
	}
}

// Under unlimited budget every blockable scenario whose loss exceeds its
// blocking cost gets blocked.
func TestOptimalBlocksWorthwhileScenarios(t *testing.T) {
	p := sample()
	plan, err := p.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"s1", "s2"} {
		found := false
		for _, b := range plan.Blocked {
			if b == s {
				found = true
			}
		}
		if !found {
			t.Errorf("worthwhile scenario %s unblocked", s)
		}
	}
}

func TestOptimalSharedMitigation(t *testing.T) {
	// One mitigation blocks two scenarios: cheaper than the sum.
	p := &Problem{
		Options: []Option{
			{ID: "shared", Cost: 60},
			{ID: "single", Cost: 10},
		},
		Scenarios: []mitigation.ScenarioLoss{
			{ID: "a", Loss: 50, Activations: [][][]string{{{"shared"}}}},
			{ID: "b", Loss: 50, Activations: [][][]string{{{"shared", "single"}}}},
		},
		Budget: -1,
	}
	plan, err := p.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: single (10) blocks b; shared(60) would additionally block a
	// (50): buying shared instead costs 60 and blocks both: total 60.
	// Buying both: 70, residual 0 -> total 70. Buying single only:
	// 10 + 50 = 60. Tie between {shared} and {single}: cheaper wins.
	if strings.Join(plan.Selected, ",") != "single" || plan.Total != 60 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestValidation(t *testing.T) {
	bad := []*Problem{
		{Options: []Option{{ID: ""}}},
		{Options: []Option{{ID: "a"}, {ID: "a"}}},
		{Options: []Option{{ID: "a", Cost: -1}}},
		{Scenarios: []mitigation.ScenarioLoss{{ID: "s", Loss: -5}}},
	}
	for i, p := range bad {
		p.Budget = -1
		if _, err := p.Optimal(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
		if _, _, err := p.MultiPhase(); err == nil {
			t.Errorf("case %d (multiphase): expected error", i)
		}
	}
}

func TestMultiPhaseOrdering(t *testing.T) {
	p := sample()
	phases, final, err := p.MultiPhase()
	if err != nil {
		t.Fatal(err)
	}
	// Greedy efficiency: m1 (100/20=5) before m2 (200/45≈4.4); m3 never
	// (50/90 reduces total? reduction 50 > 0, gain 0.55 — greedy still
	// takes any positive reduction, by design the paper's staged plan
	// keeps deploying while something improves loss).
	if len(phases) < 2 || phases[0].MitigationID != "m1" || phases[1].MitigationID != "m2" {
		t.Fatalf("phases = %+v", phases)
	}
	if final.ResidualLoss > 50 && len(phases) == 2 {
		t.Fatalf("final = %+v", final)
	}
	// Loss reductions must be recorded.
	if phases[0].LossReduction != 100 || phases[1].LossReduction != 200 {
		t.Fatalf("reductions = %+v", phases)
	}
}

func TestMultiPhaseBudget(t *testing.T) {
	p := sample()
	p.Budget = 25
	phases, final, err := p.MultiPhase()
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 1 || phases[0].MitigationID != "m1" {
		t.Fatalf("phases = %+v", phases)
	}
	if final.Cost > 25 {
		t.Fatalf("budget violated: %+v", final)
	}
}

// The greedy plan never beats the exact optimum.
func TestGreedyNeverBeatsOptimal(t *testing.T) {
	p := sample()
	opt, err := p.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	_, greedy, err := p.MultiPhase()
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Total < opt.Total {
		t.Fatalf("greedy %d beat optimal %d", greedy.Total, opt.Total)
	}
}

// Cross-check the native optimum against the ASP #minimize encoding.
func TestASPAgreesWithNative(t *testing.T) {
	p := sample()
	native, err := p.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := p.EncodeASP()
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.SolveProgram(prog, solver.Options{Optimize: true, MaxModels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 1 {
		t.Fatalf("ASP models = %d", len(res.Models))
	}
	total := 0
	for _, c := range res.Models[0].Cost {
		total += c.Cost
	}
	if total != native.Total {
		t.Fatalf("ASP optimum %d != native %d", total, native.Total)
	}
	for _, id := range native.Selected {
		if !res.Models[0].Contains("select(" + id + ")") {
			// Different optimal selections with equal totals are possible;
			// only flag when totals diverge (already checked) or the ASP
			// selection is not optimal under native evaluation.
			sel := map[string]bool{}
			for _, a := range res.Models[0].WithPredicate("select") {
				sel[strings.TrimSuffix(strings.TrimPrefix(a, "select("), ")")] = true
			}
			if p.Evaluate(sel).Total != native.Total {
				t.Fatalf("ASP selection %v not optimal", res.Models[0].Atoms)
			}
			break
		}
	}
}

func TestMultiActivationScenario(t *testing.T) {
	// A combined scenario is prevented by blocking any one of its
	// activations.
	p := &Problem{
		Options: []Option{{ID: "x", Cost: 5}, {ID: "y", Cost: 5}},
		Scenarios: []mitigation.ScenarioLoss{
			{ID: "combo", Loss: 100, Activations: [][][]string{
				{{"x"}}, // activation 1 blockable by x
				{{"y"}}, // activation 2 blockable by y
			}},
		},
		Budget: -1,
	}
	plan, err := p.Optimal()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Selected) != 1 || plan.Total != 5 {
		t.Fatalf("plan = %+v", plan)
	}
}

func BenchmarkOptimal(b *testing.B) {
	// 12 options, 20 scenarios with random-ish structure.
	p := &Problem{Budget: -1}
	for i := 0; i < 12; i++ {
		p.Options = append(p.Options, Option{ID: string(rune('a' + i)), Cost: 10 + i*7})
	}
	for i := 0; i < 20; i++ {
		m1 := string(rune('a' + i%12))
		m2 := string(rune('a' + (i*5+3)%12))
		p.Scenarios = append(p.Scenarios, mitigation.ScenarioLoss{
			ID: string(rune('A' + i)), Loss: 30 + i*13,
			Activations: [][][]string{{{m1, m2}}},
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Optimal(); err != nil {
			b.Fatal(err)
		}
	}
}
