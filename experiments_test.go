package cpsrisk

// Top-level experiment index tests: one named test per paper artifact,
// exercising the public API end to end (see DESIGN.md and EXPERIMENTS.md).
// Deeper unit and property tests live next to each package.

import (
	"strings"
	"testing"

	"cpsrisk/internal/cegar"
	"cpsrisk/internal/dynamics"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/plant"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/report"
	"cpsrisk/internal/risk"
	"cpsrisk/internal/rough"
	"cpsrisk/internal/sensitivity"
	"cpsrisk/internal/watertank"
)

// TestTableI_MatchesPaper (experiment T1): the rendered Table I equals the
// paper cell for cell.
func TestTableI_MatchesPaper(t *testing.T) {
	want := [][]string{
		{"VH", "M", "H", "VH", "VH", "VH"},
		{"H", "L", "M", "H", "VH", "VH"},
		{"M", "VL", "L", "M", "H", "VH"},
		{"L", "VL", "VL", "L", "M", "H"},
		{"VL", "VL", "VL", "VL", "L", "M"},
	}
	lines := strings.Split(report.TableI(), "\n")
	for i, row := range want {
		got := strings.Fields(lines[2+i])
		if strings.Join(got, " ") != strings.Join(row, " ") {
			t.Errorf("Table I row %d = %v, want %v", i, got, row)
		}
	}
}

// TestTableII_MatchesPaper (experiment T2): the rendered Table II carries
// the paper's violation vector in every row, via both engines.
func TestTableII_MatchesPaper(t *testing.T) {
	wantRows := map[string][2]string{
		"S1": {"-", "-"},
		"S2": {"Violated", "Violated"},
		"S3": {"-", "-"},
		"S4": {"Violated", "-"},
		"S5": {"Violated", "Violated"},
		"S6": {"-", "-"},
		"S7": {"Violated", "Violated"},
	}
	for _, useASP := range []bool{false, true} {
		table, err := watertank.PaperTableII(useASP)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(table, "\n") {
			fields := strings.Fields(line)
			if len(fields) == 0 {
				continue
			}
			want, ok := wantRows[fields[0]]
			if !ok {
				continue
			}
			r2 := fields[len(fields)-1]
			r1 := fields[len(fields)-2]
			if r1 != want[0] || r2 != want[1] {
				t.Errorf("asp=%v row %s: R1=%s R2=%s, want %v", useASP, fields[0], r1, r2, want)
			}
		}
	}
}

// TestFig2_DerivationConsistency (experiment F2): the attribute tree is
// internally consistent — the final risk equals the Table I lookup of its
// own derived LM and LEF, for every leaf combination of the primary
// branch.
func TestFig2_DerivationConsistency(t *testing.T) {
	s := qual.FiveLevel()
	for cf := s.Min(); cf <= s.Max(); cf++ {
		for tc := s.Min(); tc <= s.Max(); tc++ {
			for pl := s.Min(); pl <= s.Max(); pl++ {
				d := risk.Derive(risk.Attributes{
					ContactFrequency:    cf,
					ProbabilityOfAction: qual.Medium,
					ThreatCapability:    tc,
					ResistanceStrength:  qual.Medium,
					PrimaryLoss:         pl,
				})
				if d.Risk != risk.ORARisk(d.LossMagnitude, d.LossEventFrequency) {
					t.Fatalf("inconsistent derivation: %s", d)
				}
			}
		}
	}
}

// TestSectionVA_SensitivityClaim (experiment X1): the paper's exact §V-A
// worked example.
func TestSectionVA_SensitivityClaim(t *testing.T) {
	out := func(a sensitivity.Assignment) qual.Level {
		return risk.ORARisk(a["LM"], a["LEF"])
	}
	base := sensitivity.Assignment{"LEF": qual.Low, "LM": qual.Low}
	narrow, err := sensitivity.Analyze(base,
		[]sensitivity.Factor{{Name: "LM", Levels: []qual.Level{qual.VeryLow, qual.Low}}}, out)
	if err != nil {
		t.Fatal(err)
	}
	if narrow[0].Sensitive {
		t.Error("LM in {VL,L} at LEF=L must be insensitive (paper §V-A)")
	}
	wide, err := sensitivity.Analyze(base,
		[]sensitivity.Factor{{Name: "LM",
			Levels: []qual.Level{qual.Low, qual.Medium, qual.High, qual.VeryHigh}}}, out)
	if err != nil {
		t.Fatal(err)
	}
	if !wide[0].Sensitive {
		t.Error("LM in L..VH at LEF=L must be sensitive (paper §V-A)")
	}
}

// TestSectionVII_S5OutranksS7 (experiment X2): S5 and S7 violate the same
// requirements, but S7's triple coincidence is less probable, so S5 ranks
// at least as high and never below it.
func TestSectionVII_S5OutranksS7(t *testing.T) {
	eng, err := watertank.Engine()
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := hazard.Analyze(eng, watertank.PaperCandidates(), -1, watertank.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	s5 := epa.Scenario{watertank.FaultLabels["F2"], watertank.FaultLabels["F3"]}
	s7 := epa.Scenario{watertank.FaultLabels["F1"], watertank.FaultLabels["F2"], watertank.FaultLabels["F3"]}
	r5, _ := analysis.ByScenario(s5)
	r7, _ := analysis.ByScenario(s7)
	if strings.Join(r5.Violated, ",") != strings.Join(r7.Violated, ",") {
		t.Fatalf("S5 and S7 must violate the same requirements: %v vs %v", r5.Violated, r7.Violated)
	}
	ranked := analysis.Ranked()
	pos := map[string]int{}
	for i, s := range ranked {
		pos[s.Scenario.Key()] = i
	}
	if pos[s5.Key()] > pos[s7.Key()] {
		t.Errorf("S5 (rank %d) must not rank below S7 (rank %d)", pos[s5.Key()], pos[s7.Key()])
	}
}

// TestRST_RegionsFilterSpurious (experiment X3): dropping the LM factor
// from the risk decision table moves every VH-risk verdict out of the
// certain region — the boundary region flags exactly the undecidable
// cells.
func TestRST_RegionsFilterSpurious(t *testing.T) {
	s := qual.FiveLevel()
	var objects []rough.Object
	for lm := s.Min(); lm <= s.Max(); lm++ {
		for lef := s.Min(); lef <= s.Max(); lef++ {
			objects = append(objects, rough.Object{
				ID:       "c" + s.Label(lm) + "_" + s.Label(lef),
				Values:   map[string]string{"LM": s.Label(lm), "LEF": s.Label(lef)},
				Decision: s.Label(risk.ORARisk(lm, lef)),
			})
		}
	}
	tbl, err := rough.NewTable([]string{"LM", "LEF"}, objects)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Dependency(tbl.Attributes) != 1.0 {
		t.Fatal("complete table must be crisp")
	}
	ap := tbl.ApproximateDecision([]string{"LEF"}, "VH")
	if len(ap.Lower) != 0 {
		t.Errorf("no VH verdict is certain without LM: %v", ap.Lower)
	}
	if len(ap.Boundary) == 0 {
		t.Error("boundary region must flag the undecidable cells")
	}
	// Every column of Table I that can reach VH is in the boundary.
	for _, id := range ap.Boundary {
		if strings.HasSuffix(id, "_VL") {
			t.Errorf("LEF=VL cannot reach VH: %s", id)
		}
	}
}

// TestCEGAR_EliminatesSpuriousKeepsReal (experiment X4): the refinement
// loop removes over-abstraction artifacts without losing any confirmed
// hazard.
func TestCEGAR_EliminatesSpuriousKeepsReal(t *testing.T) {
	types := watertank.Types()
	coarse, err := epa.NewEngine(watertank.Model(), epa.NewBehaviorLibrary(types))
	if err != nil {
		t.Fatal(err)
	}
	fine, err := watertank.Engine()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cegar.Run([]cegar.Level{
		{Name: "coarse", Engine: coarse,
			Mutations: watertank.PaperCandidates(), Requirements: watertank.Requirements()},
		{Name: "fine", Engine: fine,
			Mutations: watertank.PaperCandidates(), Requirements: watertank.Requirements()},
	}, cegar.NewPlantOracle(), -1)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerLevelFindings[1] >= res.PerLevelFindings[0] {
		t.Errorf("refinement must shrink the finding set: %v", res.PerLevelFindings)
	}
	// Real: the F4 attack confirmed for both requirements.
	confirmed := map[string]bool{}
	for _, j := range res.Confirmed() {
		confirmed[j.Finding.String()] = true
	}
	f4 := epa.Scenario{{Component: plant.CompEWS, Fault: plant.FaultCompromised}}
	for _, req := range []string{"R1", "R2"} {
		if !confirmed[f4.Key()+" violates "+req] {
			t.Errorf("confirmed findings lost %s violation of %s", f4.Key(), req)
		}
	}
}

// TestNoHazardOverlooked is the framework's headline guarantee at the
// integration level: for the case study, every scenario that concretely
// violates a requirement on the plant appears among the abstract analysis
// hazards (subset check over the full F1..F4 space; the finer-grained
// per-port property lives in the watertank package).
func TestNoHazardOverlooked(t *testing.T) {
	eng, err := watertank.Engine()
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := hazard.Analyze(eng, watertank.PaperCandidates(), -1, watertank.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	oracle := cegar.NewPlantOracle()
	for _, sr := range analysis.Scenarios {
		for _, req := range []string{"R1", "R2"} {
			verdict, err := oracle.Check(cegar.Finding{Scenario: sr.Scenario, ReqID: req})
			if err != nil {
				t.Fatal(err)
			}
			if verdict == cegar.Confirmed && !sr.Violates(req) {
				t.Errorf("scenario %s concretely violates %s but is not flagged",
					sr.Scenario.Key(), req)
			}
		}
	}
}

// TestAbstractionHierarchyNested (experiment X6): the three abstraction
// levels form a proper over-approximation chain on the paper's fault set —
// hazards(dynamic/concrete) ⊆ hazards(detailed static EPA) ⊆
// hazards(coarse static EPA) — with the dynamic qualitative model agreeing
// exactly with the concrete plant (checked combo by combo in
// internal/dynamics).
func TestAbstractionHierarchyNested(t *testing.T) {
	types := watertank.Types()
	coarseEng, err := epa.NewEngine(watertank.Model(), epa.NewBehaviorLibrary(types))
	if err != nil {
		t.Fatal(err)
	}
	fineEng, err := watertank.Engine()
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := hazard.Analyze(coarseEng, watertank.PaperCandidates(), -1, watertank.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	fine, err := hazard.Analyze(fineEng, watertank.PaperCandidates(), -1, watertank.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	sys := dynamics.WaterTank()
	for _, fs := range fine.Scenarios {
		cs, ok := coarse.ByScenario(fs.Scenario)
		if !ok {
			t.Fatalf("coarse analysis missing %s", fs.Scenario.Key())
		}
		// Every fine violation appears at the coarse level.
		for _, v := range fs.Violated {
			if !cs.Violates(v) {
				t.Errorf("%s: fine flags %s but coarse does not", fs.Scenario.Key(), v)
			}
		}
		// Every dynamic-model violation appears at the fine level.
		var injs []dynamics.Injection
		for _, a := range fs.Scenario {
			injs = append(injs, dynamics.Injection{Key: a.Component + ":" + a.Fault})
		}
		tr, err := sys.Run(20, injs)
		if err != nil {
			t.Fatal(err)
		}
		if dynamics.Overflowed(tr) && !fs.Violates("R1") {
			t.Errorf("%s: dynamic overflow not flagged by static EPA", fs.Scenario.Key())
		}
		if dynamics.Overflowed(tr) && !dynamics.Alerted(tr) && !fs.Violates("R2") {
			t.Errorf("%s: dynamic silent overflow not flagged by static EPA", fs.Scenario.Key())
		}
	}
}
