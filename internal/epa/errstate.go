// Package epa implements qualitative Error Propagation Analysis — the
// embedded analytical core of the framework (paper §II, ref [4]). Error
// states are sets of qualitative error modes (a powerset lattice, so the
// propagation fixpoint is monotone and cycle-safe); component behaviour is
// declarative transfer-rule data interpreted identically by the fast
// native fixpoint engine and by the generated ASP encoding used for
// exhaustive scenario analysis.
package epa

import (
	"fmt"
	"sort"
	"strings"
)

// ErrMode is a single qualitative error mode.
type ErrMode uint8

// Error modes. The four-mode alphabet covers the failure pathology the
// paper's case study needs: wrong values/commands, missing signals, late
// signals, and attacker-controlled components (the security-specific mode
// bridging vulnerabilities to dependability, §IV).
const (
	// ErrValue is a wrong value or command on a flow.
	ErrValue ErrMode = 1 << iota
	// ErrOmission is a missing signal or flow.
	ErrOmission
	// ErrTiming is a late signal.
	ErrTiming
	// ErrCompromise marks attacker-controlled content.
	ErrCompromise
)

// AllModes lists every error mode.
var AllModes = []ErrMode{ErrValue, ErrOmission, ErrTiming, ErrCompromise}

// modeNames maps modes to their ASP-friendly names.
var modeNames = map[ErrMode]string{
	ErrValue:      "value_err",
	ErrOmission:   "omission",
	ErrTiming:     "late",
	ErrCompromise: "compromised",
}

// String implements fmt.Stringer.
func (m ErrMode) String() string {
	if n, ok := modeNames[m]; ok {
		return n
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseMode parses a mode name.
func ParseMode(name string) (ErrMode, error) {
	for m, n := range modeNames {
		if n == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("epa: unknown error mode %q", name)
}

// ErrState is a set of error modes; 0 is the error-free state.
type ErrState uint8

// OK is the error-free state.
const OK ErrState = 0

// StateOf builds a state from modes.
func StateOf(modes ...ErrMode) ErrState {
	var s ErrState
	for _, m := range modes {
		s |= ErrState(m)
	}
	return s
}

// AnyError is the state containing every mode.
var AnyError = StateOf(AllModes...)

// Has reports whether the state contains the mode.
func (s ErrState) Has(m ErrMode) bool { return s&ErrState(m) != 0 }

// Union merges two states (the lattice join).
func (s ErrState) Union(o ErrState) ErrState { return s | o }

// Intersects reports whether the states share a mode.
func (s ErrState) Intersects(o ErrState) bool { return s&o != 0 }

// IsOK reports the error-free state.
func (s ErrState) IsOK() bool { return s == OK }

// Modes lists the contained modes in declaration order.
func (s ErrState) Modes() []ErrMode {
	var out []ErrMode
	for _, m := range AllModes {
		if s.Has(m) {
			out = append(out, m)
		}
	}
	return out
}

// String implements fmt.Stringer.
func (s ErrState) String() string {
	if s.IsOK() {
		return "ok"
	}
	parts := make([]string, 0, 4)
	for _, m := range s.Modes() {
		parts = append(parts, m.String())
	}
	return strings.Join(parts, "+")
}

// ParseState parses "ok" or a "+"-joined mode list.
func ParseState(text string) (ErrState, error) {
	if text == "ok" || text == "" {
		return OK, nil
	}
	var s ErrState
	for _, part := range strings.Split(text, "+") {
		m, err := ParseMode(strings.TrimSpace(part))
		if err != nil {
			return 0, err
		}
		s |= ErrState(m)
	}
	return s, nil
}

// Leq reports lattice order: s is at most o (s ⊆ o).
func (s ErrState) Leq(o ErrState) bool { return s&^o == 0 }

// SortModes orders a mode slice canonically.
func SortModes(ms []ErrMode) {
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
}
