package temporal

import (
	"testing"

	"cpsrisk/internal/logic"
	"cpsrisk/internal/solver"
)

// TestIncrementalAgreesWithEval is the incremental counterpart of
// TestUnrollAgreesWithEval: one Incremental per trace is compiled at
// horizon 1 and grown one state at a time with Extend; after every
// extension the query at the current horizon must agree with the native
// evaluator on the trace prefix — and queries at EARLIER horizons (a
// single grounding serves all bounds) must agree with the corresponding
// prefix too.
func TestIncrementalAgreesWithEval(t *testing.T) {
	formulas := []Formula{
		P("a"),
		Not(P("a")),
		And(P("a"), P("b")),
		Or(P("a"), P("b")),
		Implies(P("a"), P("b")),
		Next(P("a")),
		WeakNext(P("a")),
		Finally(P("a")),
		Globally(P("a")),
		Until(P("a"), P("b")),
		Release(P("a"), P("b")),
		Globally(Implies(P("a"), Finally(P("b")))),
		Finally(And(P("a"), Next(P("b")))),
		Not(Until(P("a"), P("b"))),
		Globally(Not(P("a"))),
		And(Globally(P("a")), Finally(P("b"))),
	}
	const n = 3
	total := 1 << uint(2*n)
	for mask := 0; mask < total; mask++ {
		tr := make(Trace, n)
		for i := 0; i < n; i++ {
			st := State{}
			if mask>>(2*i)&1 == 1 {
				st["a"] = true
			}
			if mask>>(2*i+1)&1 == 1 {
				st["b"] = true
			}
			tr[i] = st
		}
		inc, err := NewIncremental(1)
		if err != nil {
			t.Fatal(err)
		}
		preds := make([]string, len(formulas))
		for fi, f := range formulas {
			if preds[fi], err = inc.Compile(f); err != nil {
				t.Fatalf("Compile %s: %v", f, err)
			}
		}
		for h := 1; h <= n; h++ {
			if h > 1 {
				if err := inc.Extend(1); err != nil {
					t.Fatal(err)
				}
			}
			// Stream in the new state's facts.
			facts := &logic.Program{}
			for key := range tr[h-1] {
				facts.AddFact(logic.A(key, logic.Num(h-1)))
			}
			if err := inc.Add(facts); err != nil {
				t.Fatal(err)
			}
			// Check the current horizon and every earlier one.
			for q := 1; q <= h; q++ {
				res, err := inc.Solve(q, nil, solver.Options{MaxModels: 1})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Models) != 1 {
					t.Fatalf("trace %b h=%d q=%d: %d models, want 1", mask, h, q, len(res.Models))
				}
				for fi, f := range formulas {
					want := Eval(f, tr[:q])
					got := res.Models[0].Contains(preds[fi] + "(0)")
					if got != want {
						t.Fatalf("formula %s on trace %v prefix %d (grown to %d): ASP=%v eval=%v",
							f, tr[:h], q, h, got, want)
					}
				}
			}
		}
		inc.Close()
	}
}

// TestIncrementalExtendReusesGrounding verifies the multi-shot counters:
// repeated Extend+Solve on one Incremental runs one session, one query
// per horizon, and reuses the already-ground atom pool on each extension.
func TestIncrementalExtendReusesGrounding(t *testing.T) {
	inc, err := NewIncremental(4)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	pred, err := inc.Compile(Globally(Implies(P("req"), Finally(P("grant")))))
	if err != nil {
		t.Fatal(err)
	}
	facts := logic.MustParse(`req(1). grant(2).`)
	if err := inc.Add(facts); err != nil {
		t.Fatal(err)
	}
	const extensions = 4
	for i := 0; i < extensions; i++ {
		res, err := inc.Solve(0, nil, solver.Options{MaxModels: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Models) != 1 || !res.Models[0].Contains(pred+"(0)") {
			t.Fatalf("extension %d: formula must hold, models=%d", i, len(res.Models))
		}
		if err := inc.Extend(2); err != nil {
			t.Fatal(err)
		}
	}
	if inc.Horizon() != 4+2*extensions {
		t.Fatalf("horizon = %d", inc.Horizon())
	}
	st := inc.Stats()
	if st.Sessions != 1 || st.Queries != extensions || st.Adds != extensions-1 {
		t.Fatalf("sessions=%d queries=%d adds=%d, want 1/%d/%d",
			st.Sessions, st.Queries, st.Adds, extensions, extensions-1)
	}
	if st.GroundAtomsReused == 0 {
		t.Fatal("extensions must reuse the existing ground atom pool")
	}
}

// An unsatisfied requirement at one horizon can become satisfied at a
// longer one — the bounded-liveness pattern Extend exists for.
func TestIncrementalLivenessAcrossExtension(t *testing.T) {
	inc, err := NewIncremental(2)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	pred, err := inc.Compile(Finally(P("goal")))
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Add(logic.MustParse(`goal(3).`)); err != nil {
		t.Fatal(err)
	}
	res, err := inc.Solve(0, nil, solver.Options{MaxModels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Models[0].Contains(pred + "(0)") {
		t.Fatal("goal at step 3 must be invisible at horizon 2")
	}
	if err := inc.Extend(2); err != nil {
		t.Fatal(err)
	}
	res, err = inc.Solve(0, nil, solver.Options{MaxModels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Models[0].Contains(pred + "(0)") {
		t.Fatal("goal at step 3 must be reached at horizon 4")
	}
	// The earlier horizon still answers "no" from the same grounding.
	res, err = inc.Solve(2, nil, solver.Options{MaxModels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Models[0].Contains(pred + "(0)") {
		t.Fatal("horizon-2 query must still miss the late goal")
	}
}

func TestIncrementalValidation(t *testing.T) {
	if _, err := NewIncremental(0); err == nil {
		t.Error("horizon 0 must be rejected")
	}
	inc, err := NewIncremental(2)
	if err != nil {
		t.Fatal(err)
	}
	defer inc.Close()
	if err := inc.Extend(0); err == nil {
		t.Error("extend by 0 must be rejected")
	}
	if _, err := inc.Solve(5, nil, solver.Options{}); err == nil {
		t.Error("query beyond the bound must be rejected")
	}
}
