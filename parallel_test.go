package cpsrisk

// Top-level determinism experiment: the parallel scenario sweep must be
// byte-identical to the sequential analysis on the paper's Table II case
// study — same S<n> IDs, same ordering, same risk verdicts, same
// truncation — at every worker count, with and without a tight resource
// budget. See DESIGN.md, "Concurrency model".

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/watertank"
)

// canonicalAnalysis serializes the deterministic part of an Analysis —
// everything except the wall-clock Sweep stats.
func canonicalAnalysis(t *testing.T, a *hazard.Analysis) []byte {
	t.Helper()
	out, err := json.Marshal(struct {
		Scenarios  []hazard.ScenarioResult
		Truncation *budget.Truncation
	}{a.Scenarios, a.Truncation})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestParallelSweep_DeterministicOnTableII (experiment D1): sweep the
// Table II candidate set (all cardinalities) sequentially and at
// parallelism 1, 4, and NumCPU; every run must produce byte-identical
// results.
func TestParallelSweep_DeterministicOnTableII(t *testing.T) {
	eng, err := watertank.Engine()
	if err != nil {
		t.Fatal(err)
	}
	muts := watertank.PaperCandidates()
	reqs := watertank.Requirements()

	seq, err := hazard.Analyze(eng, muts, -1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalAnalysis(t, seq)
	if len(seq.Scenarios) == 0 {
		t.Fatal("empty sequential sweep; fixture broken")
	}
	for _, par := range []int{1, 4, runtime.NumCPU()} {
		got, err := hazard.AnalyzeParallel(eng, muts, -1, reqs, par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !bytes.Equal(canonicalAnalysis(t, got), want) {
			t.Errorf("parallelism %d: sweep differs from sequential:\n%s\nvs\n%s",
				par, canonicalAnalysis(t, got), want)
		}
	}
}

// TestParallelSweep_DeterministicUnderTightBudget (experiment D2): a
// scenario cap that trips mid-sweep must leave sequential and parallel
// runs with the same truncated prefix — the largest fully-completed
// cardinality — and the same truncation report.
func TestParallelSweep_DeterministicUnderTightBudget(t *testing.T) {
	eng, err := watertank.Engine()
	if err != nil {
		t.Fatal(err)
	}
	muts := watertank.PaperCandidates()
	reqs := watertank.Requirements()

	// With 4 candidates there are 4 singletons and 6 pairs; a cap of 7
	// trips inside cardinality 2, forcing the fallback to cardinality 1.
	mk := func() *budget.Budget {
		return budget.New(context.Background(), budget.Limits{MaxScenarios: 7})
	}
	seq, err := hazard.AnalyzeBudget(eng, muts, -1, reqs, mk())
	if err != nil {
		t.Fatal(err)
	}
	if seq.Truncation == nil || seq.Truncation.Reason != budget.ReasonScenarios {
		t.Fatalf("truncation = %+v, want a tripped scenario cap", seq.Truncation)
	}
	want := canonicalAnalysis(t, seq)
	for _, par := range []int{1, 4, runtime.NumCPU()} {
		got, err := hazard.AnalyzeParallelBudget(eng, muts, -1, reqs, mk(), par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !bytes.Equal(canonicalAnalysis(t, got), want) {
			t.Errorf("parallelism %d: capped sweep differs:\n%s\nvs\n%s",
				par, canonicalAnalysis(t, got), want)
		}
	}
}
