// Command tracecheck validates a Chrome trace_event JSON file as emitted
// by riskassess -trace: well-formed envelope, known phases, per-lane
// timestamps sorted, and every duration-begin event matched by a
// stack-ordered end event. It exits non-zero on the first violation —
// the CI teeth behind the trace exporter.
//
// Usage:
//
//	tracecheck [-require span,span,...] [-trace-id id] trace.json
//
// -require lists span names that must each appear at least once in the
// trace (e.g. the pipeline stage names). -trace-id asserts that the
// trace carries the given correlation ID in an event's args — the
// contract that lets downstream tooling join a trace export against
// the service's structured logs and report summaries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cpsrisk/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	require := fs.String("require", "", "comma-separated span names that must appear in the trace")
	wantTraceID := fs.String("trace-id", "", "correlation ID that must appear as a traceId arg in the trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one trace file required")
	}
	path := fs.Arg(0)

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	pairs, err := obs.ValidateChromeTrace(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if pairs == 0 {
		return fmt.Errorf("%s: no complete spans in trace", path)
	}

	if *require != "" || *wantTraceID != "" {
		events, err := readEvents(path)
		if err != nil {
			return err
		}
		names := spanNames(events)
		var missing []string
		for _, want := range strings.Split(*require, ",") {
			want = strings.TrimSpace(want)
			if want != "" && !names[want] {
				missing = append(missing, want)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("%s: required spans missing: %s", path, strings.Join(missing, ", "))
		}
		if *wantTraceID != "" && !hasTraceID(events, *wantTraceID) {
			return fmt.Errorf("%s: no event carries args.traceId == %q", path, *wantTraceID)
		}
	}

	fmt.Printf("%s: ok (%d spans)\n", path, pairs)
	return nil
}

// readEvents loads the trace's event list, accepting both the
// {"traceEvents": [...]} envelope and a bare event array.
func readEvents(path string) ([]obs.ChromeEvent, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var envelope struct {
		TraceEvents []obs.ChromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &envelope); err == nil && envelope.TraceEvents != nil {
		return envelope.TraceEvents, nil
	}
	var events []obs.ChromeEvent
	if err := json.Unmarshal(data, &events); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

// spanNames collects the names of begin events in the trace.
func spanNames(events []obs.ChromeEvent) map[string]bool {
	names := map[string]bool{}
	for _, ev := range events {
		if ev.Ph == "B" || ev.Ph == "X" {
			names[ev.Name] = true
		}
	}
	return names
}

// hasTraceID reports whether any event's args object carries the given
// traceId value.
func hasTraceID(events []obs.ChromeEvent, id string) bool {
	for _, ev := range events {
		if args, ok := ev.Args.(map[string]any); ok {
			if got, ok := args["traceId"].(string); ok && got == id {
				return true
			}
		}
	}
	return false
}
