package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) rendered natively
// from a metrics snapshot — no client library, no extra state. Counters
// and gauges map 1:1; each 64-bucket log2 histogram becomes a cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`, and its
// snapshot-time p50/p95/p99 estimates (the same numbers the METRICS
// report section prints) are exposed as `<name>_quantile{quantile=...}`
// gauges so dashboards get latency quantiles without running
// histogram_quantile over sparse scrapes.
//
// Instrument names use dots as separators ("sweep.scenarios",
// "http.latency_us.assess"); the exposition rewrites every character
// outside [a-zA-Z0-9_:] to '_' and prefixes "cpsrisk_", so
// "sweep.scenarios" scrapes as "cpsrisk_sweep_scenarios". Bucket `le`
// boundaries are the inclusive integer bounds Hi-1 of the [Lo, Hi) log2
// buckets; observations are integers, so v <= Hi-1 iff v < Hi and the
// cumulative counts are exact and monotone at every emitted boundary.

// promName sanitizes an instrument name into a legal Prometheus metric
// name, prefixed with the exporter namespace.
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString("cpsrisk_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			sb.WriteByte(c)
		case c >= '0' && c <= '9':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promLe formats a bucket boundary for the `le` label: the inclusive
// integer bound Hi-1 of a [Lo, Hi) bucket, so the cumulative count at
// every emitted boundary is exact for integer observations.
func promLe(hi int64) string {
	if hi == math.MaxInt64 {
		return "+Inf"
	}
	return fmt.Sprintf("%d", hi-1)
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format: counters, gauges, histograms (cumulative buckets + sum +
// count), and per-histogram quantile gauges. Families are emitted in
// sorted instrument-name order so successive scrapes of an unchanged
// registry are byte-identical. A nil snapshot writes nothing.
func WritePrometheus(w io.Writer, m *MetricsSnapshot) error {
	if m == nil {
		return nil
	}
	names := make([]string, 0, len(m.Counters))
	for n := range m.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			pn, n, pn, pn, m.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range m.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			pn, n, pn, pn, m.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range m.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := m.Histograms[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", pn, n, pn); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			if b.Hi == math.MaxInt64 {
				// The overflow bucket is covered by the final +Inf line.
				continue
			}
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pn, promLe(b.Hi), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			pn, h.Count, pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
		if h.Count > 0 {
			if _, err := fmt.Fprintf(w, "# HELP %s_quantile %s quantile estimate\n# TYPE %s_quantile gauge\n", pn, n, pn); err != nil {
				return err
			}
			for _, q := range [...]struct {
				label string
				v     int64
			}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
				if _, err := fmt.Fprintf(w, "%s_quantile{quantile=\"%s\"} %d\n", pn, q.label, q.v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WritePrometheus snapshots the registry and writes the exposition —
// the /metrics handler body. Nil-safe (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, r.Snapshot())
}
