package hazard

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"sort"
	"testing"

	"cpsrisk/internal/budget"
)

// canonical serializes the deterministic part of an Analysis (IDs,
// ordering, violations, risks, truncation) — everything except the
// wall-clock Sweep stats — for byte-level comparison between sweeps.
func canonical(t *testing.T, a *Analysis) []byte {
	t.Helper()
	out, err := json.Marshal(struct {
		Scenarios  []ScenarioResult
		Truncation *budget.Truncation
	}{a.Scenarios, a.Truncation})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestParallelSweepMatchesSequential(t *testing.T) {
	eng, muts, reqs := setup(t)
	seq, err := Analyze(eng, muts, -1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := canonical(t, seq)
	for _, par := range []int{2, 4, runtime.NumCPU() + 2} {
		got, err := AnalyzeParallel(eng, muts, -1, reqs, par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !bytes.Equal(canonical(t, got), want) {
			t.Errorf("parallelism %d: output differs from sequential:\n%s\nvs\n%s",
				par, canonical(t, got), want)
		}
		if got.Sweep == nil || got.Sweep.Workers != par {
			t.Errorf("parallelism %d: sweep stats = %+v", par, got.Sweep)
		}
	}
}

func TestParallelSweepScenarioCapMatchesSequential(t *testing.T) {
	eng, muts, reqs := setup(t)
	// Cap of 5 trips inside cardinality 2: both sweeps must fall back to
	// the same completed cardinality <= 1 with the same truncation text.
	mk := func() *budget.Budget {
		return budget.New(context.Background(), budget.Limits{MaxScenarios: 5})
	}
	seq, err := AnalyzeBudget(eng, muts, -1, reqs, mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4} {
		got, err := AnalyzeParallelBudget(eng, muts, -1, reqs, mk(), par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !bytes.Equal(canonical(t, got), canonical(t, seq)) {
			t.Errorf("parallelism %d: capped output differs:\n%s\nvs\n%s",
				par, canonical(t, got), canonical(t, seq))
		}
	}
	if seq.Truncation == nil || seq.Truncation.Reason != budget.ReasonScenarios {
		t.Fatalf("truncation = %+v", seq.Truncation)
	}
}

func TestParallelSweepCancelledContext(t *testing.T) {
	eng, muts, reqs := setup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, err := AnalyzeParallelBudget(eng, muts, -1, reqs, budget.New(ctx, budget.Limits{}), 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Truncation == nil || a.Truncation.Reason != budget.ReasonCancelled {
		t.Fatalf("truncation = %+v", a.Truncation)
	}
	if len(a.Scenarios) != 0 {
		t.Fatalf("scenarios = %d, want 0 under a pre-cancelled context", len(a.Scenarios))
	}
}

func TestParallelSweepUnknownActivationFails(t *testing.T) {
	eng, muts, reqs := setup(t)
	bad := muts[:1:1]
	bad[0].Component = "ghost"
	if _, err := AnalyzeParallel(eng, bad, -1, reqs, 4); err == nil {
		t.Fatal("expected an error for an unknown component")
	}
}

func TestParallelSweepDefaultsToGOMAXPROCS(t *testing.T) {
	eng, muts, reqs := setup(t)
	a, err := AnalyzeParallel(eng, muts, 1, reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sweep == nil || a.Sweep.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("sweep = %+v, want %d workers", a.Sweep, runtime.GOMAXPROCS(0))
	}
}

func TestViolatedSortedAndBinarySearch(t *testing.T) {
	eng, muts, reqs := setup(t)
	a, err := AnalyzeParallel(eng, muts, -1, reqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range a.Scenarios {
		if !sort.StringsAreSorted(s.Violated) {
			t.Fatalf("%s: Violated not sorted: %v", s.ID, s.Violated)
		}
		for _, id := range s.Violated {
			if !s.Violates(id) {
				t.Errorf("%s: Violates(%q) = false for a violated requirement", s.ID, id)
			}
		}
		if s.Violates("ZZZ-not-a-requirement") || s.Violates("") {
			t.Errorf("%s: Violates matched an absent requirement", s.ID)
		}
	}
}
