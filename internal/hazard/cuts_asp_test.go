package hazard

import (
	"sort"
	"strings"
	"testing"

	"cpsrisk/internal/epa"
)

func cutKeys(cuts []epa.Scenario) []string {
	out := make([]string, 0, len(cuts))
	for _, c := range cuts {
		out = append(out, c.Key())
	}
	sort.Strings(out)
	return out
}

// The ASP minimal-cut enumeration matches the native subset-based
// computation on the guarded-chain model, for every requirement.
func TestMinimalCutsASPAgreesWithNative(t *testing.T) {
	eng, muts, reqs := setup(t)
	analysis, err := Analyze(eng, muts, -1, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range reqs {
		native := analysis.MinimalCuts(req.ID)
		var nativeScenarios []epa.Scenario
		for _, n := range native {
			nativeScenarios = append(nativeScenarios, n.Scenario)
		}
		asp, err := MinimalCutsASP(eng, muts, req, 0)
		if err != nil {
			t.Fatalf("%s: %v", req.ID, err)
		}
		got, want := cutKeys(asp), cutKeys(nativeScenarios)
		if strings.Join(got, "|") != strings.Join(want, "|") {
			t.Errorf("%s: ASP cuts %v != native %v", req.ID, got, want)
		}
	}
}

func TestMinimalCutsASPNoViolation(t *testing.T) {
	eng, muts, _ := setup(t)
	impossible := Requirement{
		ID: "RX", Severity: 0,
		Condition: All(Fault("src", "corrupt"), Not(Fault("src", "corrupt"))),
	}
	cuts, err := MinimalCutsASP(eng, muts, impossible, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 0 {
		t.Errorf("unsatisfiable condition yielded cuts: %v", cuts)
	}
}

func TestMinimalCutsASPValidation(t *testing.T) {
	eng, muts, _ := setup(t)
	if _, err := MinimalCutsASP(eng, muts, Requirement{ID: ""}, 0); err == nil {
		t.Error("empty requirement must fail")
	}
	// A tiny round budget must be reported, not silently truncated.
	reqs := []Requirement{{ID: "R1", Condition: Comp("sink", epa.ErrValue)}}
	if _, err := MinimalCutsASP(eng, muts, reqs[0], 1); err == nil {
		t.Error("exceeding maxRounds must error (two cardinality levels exist)")
	}
}

func BenchmarkMinimalCutsASP(b *testing.B) {
	eng, muts, reqs := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MinimalCutsASP(eng, muts, reqs[0], 0); err != nil {
			b.Fatal(err)
		}
	}
}
