package temporal

import (
	"fmt"

	"cpsrisk/internal/logic"
)

// PropMapper maps an atomic proposition and a time term to the timed ASP
// atom representing "the proposition holds at that step". The default
// appends the time term as the last argument: p(a,b) at T -> p(a,b,T).
type PropMapper func(a logic.Atom, t logic.Term) logic.Atom

// DefaultPropMap appends the time term as the final argument.
func DefaultPropMap(a logic.Atom, t logic.Term) logic.Atom {
	args := make([]logic.Term, 0, len(a.Args)+1)
	args = append(args, a.Args...)
	args = append(args, t)
	return logic.Atom{Pred: a.Pred, Args: args}
}

// Unroller compiles LTLf formulas into ASP rules over a bounded horizon of
// states 0..Horizon-1 — the framework's substitute for Telingo. The
// encoding is the standard fixpoint characterization of LTLf: one fresh
// predicate per subformula, defined backwards from the last state, with
// stratified default negation for !.
type Unroller struct {
	// Horizon is the number of trace states (>= 1).
	Horizon int
	// TimePred names the step-domain predicate (default "time").
	TimePred string
	// PropMap maps propositions to timed atoms (default DefaultPropMap).
	PropMap PropMapper

	counter int
	memo    map[string]string // formula text -> compiled predicate
}

// NewUnroller builds an unroller for the given horizon.
func NewUnroller(horizon int) *Unroller {
	return &Unroller{
		Horizon:  horizon,
		TimePred: "time",
		PropMap:  DefaultPropMap,
		memo:     map[string]string{},
	}
}

// EnsureTime adds the step-domain facts time(0..H-1).
func (u *Unroller) EnsureTime(prog *logic.Program) {
	prog.AddFact(logic.A(u.TimePred, logic.Interval{Lo: logic.Num(0), Hi: logic.Num(u.Horizon - 1)}))
}

// Compile adds rules defining pred(T) <-> "f holds at state T" and returns
// the fresh predicate name.
func (u *Unroller) Compile(prog *logic.Program, f Formula) (string, error) {
	if u.Horizon < 1 {
		return "", fmt.Errorf("temporal: horizon %d < 1", u.Horizon)
	}
	return u.compile(prog, f)
}

// Require adds the integrity constraint that f must hold at state 0.
func (u *Unroller) Require(prog *logic.Program, f Formula) error {
	pred, err := u.Compile(prog, f)
	if err != nil {
		return err
	}
	prog.AddRule(logic.Constraint(logic.Not(logic.A(pred, logic.Num(0)))))
	return nil
}

// Violation adds a rule deriving violated(name) when f does NOT hold at
// state 0 — the paper's requirement-violation vector entries.
func (u *Unroller) Violation(prog *logic.Program, name string, f Formula) error {
	pred, err := u.Compile(prog, f)
	if err != nil {
		return err
	}
	prog.AddRule(logic.NormalRule(
		logic.A("violated", logic.Sym(name)),
		logic.Not(logic.A(pred, logic.Num(0))),
	))
	return nil
}

func (u *Unroller) fresh() string {
	u.counter++
	return fmt.Sprintf("tl%d", u.counter)
}

var varT = logic.Var("T")

func (u *Unroller) timeLit() logic.BodyElem {
	return logic.Pos(logic.A(u.TimePred, varT))
}

func (u *Unroller) at(pred string, t logic.Term) logic.Atom {
	return logic.A(pred, t)
}

func tPlus1() logic.Term {
	return logic.BinOp{Op: logic.OpAdd, Left: varT, Right: logic.Num(1)}
}

func (u *Unroller) compile(prog *logic.Program, f Formula) (string, error) {
	key := f.String()
	if p, ok := u.memo[key]; ok {
		return p, nil
	}
	p := u.fresh()
	u.memo[key] = p
	last := logic.Num(u.Horizon - 1)

	switch ff := f.(type) {
	case TrueF:
		prog.AddRule(logic.NormalRule(u.at(p, varT), u.timeLit()))
	case FalseF:
		// No rules: never derivable.
	case Prop:
		timed := u.PropMap(ff.Atom, varT)
		prog.AddRule(logic.NormalRule(u.at(p, varT), u.timeLit(), logic.Pos(timed)))
	case NotF:
		s, err := u.compile(prog, ff.Sub)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(u.at(p, varT), u.timeLit(), logic.Not(u.at(s, varT))))
	case NextF:
		s, err := u.compile(prog, ff.Sub)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(u.at(p, varT), u.timeLit(), logic.Pos(u.at(s, tPlus1()))))
	case WeakNextF:
		s, err := u.compile(prog, ff.Sub)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(u.at(p, varT), u.timeLit(), logic.Pos(u.at(s, tPlus1()))))
		prog.AddFact(u.at(p, last))
	case FinallyF:
		s, err := u.compile(prog, ff.Sub)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(u.at(p, varT), logic.Pos(u.at(s, varT))))
		prog.AddRule(logic.NormalRule(u.at(p, varT), u.timeLit(), logic.Pos(u.at(p, tPlus1()))))
	case GloballyF:
		s, err := u.compile(prog, ff.Sub)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(u.at(p, last), logic.Pos(u.at(s, last))))
		prog.AddRule(logic.NormalRule(u.at(p, varT),
			logic.Pos(u.at(s, varT)), logic.Pos(u.at(p, tPlus1()))))
	case AndF:
		l, err := u.compile(prog, ff.L)
		if err != nil {
			return "", err
		}
		r, err := u.compile(prog, ff.R)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(u.at(p, varT),
			logic.Pos(u.at(l, varT)), logic.Pos(u.at(r, varT))))
	case OrF:
		l, err := u.compile(prog, ff.L)
		if err != nil {
			return "", err
		}
		r, err := u.compile(prog, ff.R)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(u.at(p, varT), logic.Pos(u.at(l, varT))))
		prog.AddRule(logic.NormalRule(u.at(p, varT), logic.Pos(u.at(r, varT))))
	case ImpliesF:
		l, err := u.compile(prog, ff.L)
		if err != nil {
			return "", err
		}
		r, err := u.compile(prog, ff.R)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(u.at(p, varT), u.timeLit(), logic.Not(u.at(l, varT))))
		prog.AddRule(logic.NormalRule(u.at(p, varT), logic.Pos(u.at(r, varT))))
	case UntilF:
		l, err := u.compile(prog, ff.L)
		if err != nil {
			return "", err
		}
		r, err := u.compile(prog, ff.R)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(u.at(p, varT), logic.Pos(u.at(r, varT))))
		prog.AddRule(logic.NormalRule(u.at(p, varT),
			logic.Pos(u.at(l, varT)), logic.Pos(u.at(p, tPlus1()))))
	case ReleaseF:
		l, err := u.compile(prog, ff.L)
		if err != nil {
			return "", err
		}
		r, err := u.compile(prog, ff.R)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(u.at(p, last), logic.Pos(u.at(r, last))))
		prog.AddRule(logic.NormalRule(u.at(p, varT),
			logic.Pos(u.at(r, varT)), logic.Pos(u.at(l, varT))))
		prog.AddRule(logic.NormalRule(u.at(p, varT),
			logic.Pos(u.at(r, varT)), logic.Pos(u.at(p, tPlus1()))))
	default:
		return "", fmt.Errorf("temporal: cannot compile %T", f)
	}
	return p, nil
}
