package sysmodel

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON: the model reader must never panic on arbitrary input, and
// any model it accepts must survive a write/read round trip.
func FuzzReadJSON(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"name":"m","components":[]}`,
		`{"name":"m","components":[{"id":"a","type":"t"}]}`,
		`{"name":"m","components":[{"id":"a","type":"t","attrs":{"criticality":"VH"}}],
		  "connections":[{"from":{"component":"a","port":"o"},"to":{"component":"a","port":"i"},"flow":"signal"}]}`,
		`{"components":[{"id":"outer","type":"composite",
		  "sub":{"name":"inner","components":[{"id":"leaf","type":"t"}]}}]}`,
		`{"requirements":[{"id":"R1","description":"d","formula":"G !bad","severity":"H"}]}`,
		`{"components":[{"id":"a","type":"t"},{"id":"a","type":"t"}]}`,
		`{"components":[{"id":"","type":"t"}]}`,
		`{"connections":[{"flow":"quantity"}]}`,
		`{"connections":[{"flow":"bogus"}]}`,
		`[1,2,3]`,
		`not json at all`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ReadJSON(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := m.WriteJSON(&buf); err != nil {
			// Unrepresentable zero values (e.g. a flow kind that was
			// never set) legitimately refuse to marshal.
			return
		}
		if _, err := ReadJSON(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("accepted model fails round trip: %v\ninput: %q\nrendered: %s",
				err, src, buf.Bytes())
		}
	})
}
