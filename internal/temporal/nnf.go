package temporal

// NNF rewrites a formula into negation normal form: negations are pushed
// inward to atomic propositions using the finite-trace LTL dualities
//
//	!!φ        ≡ φ
//	!(φ & ψ)   ≡ !φ | !ψ
//	!(φ | ψ)   ≡ !φ & !ψ
//	!(φ -> ψ)  ≡ φ & !ψ
//	!X φ       ≡ WX !φ        (strong/weak next are duals on finite traces)
//	!WX φ      ≡ X !φ
//	!F φ       ≡ G !φ
//	!G φ       ≡ F !φ
//	!(φ U ψ)   ≡ !φ R !ψ
//	!(φ R ψ)   ≡ !φ U !ψ
//
// and implications are expanded to !φ | ψ. The result contains Not only
// directly above propositions (or constants, which are flipped).
func NNF(f Formula) Formula { return nnf(f, false) }

func nnf(f Formula, negated bool) Formula {
	switch ff := f.(type) {
	case TrueF:
		if negated {
			return FalseF{}
		}
		return ff
	case FalseF:
		if negated {
			return TrueF{}
		}
		return ff
	case Prop:
		if negated {
			return NotF{Sub: ff}
		}
		return ff
	case NotF:
		return nnf(ff.Sub, !negated)
	case AndF:
		if negated {
			return OrF{L: nnf(ff.L, true), R: nnf(ff.R, true)}
		}
		return AndF{L: nnf(ff.L, false), R: nnf(ff.R, false)}
	case OrF:
		if negated {
			return AndF{L: nnf(ff.L, true), R: nnf(ff.R, true)}
		}
		return OrF{L: nnf(ff.L, false), R: nnf(ff.R, false)}
	case ImpliesF:
		if negated {
			return AndF{L: nnf(ff.L, false), R: nnf(ff.R, true)}
		}
		return OrF{L: nnf(ff.L, true), R: nnf(ff.R, false)}
	case NextF:
		if negated {
			return WeakNextF{Sub: nnf(ff.Sub, true)}
		}
		return NextF{Sub: nnf(ff.Sub, false)}
	case WeakNextF:
		if negated {
			return NextF{Sub: nnf(ff.Sub, true)}
		}
		return WeakNextF{Sub: nnf(ff.Sub, false)}
	case FinallyF:
		if negated {
			return GloballyF{Sub: nnf(ff.Sub, true)}
		}
		return FinallyF{Sub: nnf(ff.Sub, false)}
	case GloballyF:
		if negated {
			return FinallyF{Sub: nnf(ff.Sub, true)}
		}
		return GloballyF{Sub: nnf(ff.Sub, false)}
	case UntilF:
		if negated {
			return ReleaseF{L: nnf(ff.L, true), R: nnf(ff.R, true)}
		}
		return UntilF{L: nnf(ff.L, false), R: nnf(ff.R, false)}
	case ReleaseF:
		if negated {
			return UntilF{L: nnf(ff.L, true), R: nnf(ff.R, true)}
		}
		return ReleaseF{L: nnf(ff.L, false), R: nnf(ff.R, false)}
	default:
		return f
	}
}

// IsNNF reports whether negation appears only directly above propositions.
func IsNNF(f Formula) bool {
	switch ff := f.(type) {
	case TrueF, FalseF, Prop:
		return true
	case NotF:
		_, isProp := ff.Sub.(Prop)
		return isProp
	case NextF:
		return IsNNF(ff.Sub)
	case WeakNextF:
		return IsNNF(ff.Sub)
	case FinallyF:
		return IsNNF(ff.Sub)
	case GloballyF:
		return IsNNF(ff.Sub)
	case AndF:
		return IsNNF(ff.L) && IsNNF(ff.R)
	case OrF:
		return IsNNF(ff.L) && IsNNF(ff.R)
	case ImpliesF:
		return false // implications are expanded away by NNF
	case UntilF:
		return IsNNF(ff.L) && IsNNF(ff.R)
	case ReleaseF:
		return IsNNF(ff.L) && IsNNF(ff.R)
	default:
		return false
	}
}
