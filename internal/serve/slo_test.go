package serve

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for SLO window tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestSLOMonitorDefaults(t *testing.T) {
	m := NewSLOMonitor(0, 0, nil)
	if !m.Compliant() || m.WindowCount() != 0 {
		t.Fatal("fresh monitor must be compliant and empty")
	}
	rep := m.Report(0)
	if !rep.Compliant || rep.Threshold != DefaultSLOThreshold || rep.WindowHours != DefaultSLOWindow.Hours() {
		t.Errorf("report = %+v", rep)
	}
}

func TestSLOMonitorThresholdFlip(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	m := NewSLOMonitor(time.Hour, 3, clk.now)
	for i := 0; i < 2; i++ {
		m.Record(EventServerError, "t1", "acme", "boom")
	}
	if !m.Compliant() {
		t.Fatal("2 events under threshold 3 must stay compliant")
	}
	m.Record(EventPanic, "t2", "acme", "worse")
	if m.Compliant() {
		t.Fatal("3 events at threshold 3 must breach")
	}
	if m.WindowCount() != 3 {
		t.Errorf("WindowCount = %d, want 3", m.WindowCount())
	}
}

func TestSLOMonitorWindowExpiry(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	m := NewSLOMonitor(time.Hour, 1, clk.now)
	m.Record(EventServerError, "", "", "")
	if m.Compliant() {
		t.Fatal("breached at threshold 1")
	}
	// Events age out of the rolling window; compliance recovers without
	// any explicit reset.
	clk.advance(2 * time.Hour)
	if !m.Compliant() {
		t.Fatal("event outside the window still counted")
	}
	if m.WindowCount() != 0 {
		t.Errorf("WindowCount = %d after expiry", m.WindowCount())
	}
	rep := m.Report(0)
	if rep.TotalCount != 1 {
		t.Errorf("TotalCount = %d, want 1 (journal is append-only)", rep.TotalCount)
	}
}

func TestSLOMonitorRingWrapAndRecentOrder(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	m := NewSLOMonitor(100 * time.Hour, 1<<30, clk.now)
	for i := 0; i < sloRingCap+10; i++ {
		clk.advance(time.Second)
		m.Record(EventFaultTrip, "", "", "")
	}
	if got := m.WindowCount(); got != sloRingCap {
		t.Errorf("WindowCount = %d, want saturation at %d", got, sloRingCap)
	}
	rep := m.Report(3)
	if len(rep.Recent) != 3 {
		t.Fatalf("Recent = %d entries, want 3", len(rep.Recent))
	}
	// Newest first.
	if !rep.Recent[0].Time.After(rep.Recent[1].Time) || !rep.Recent[1].Time.After(rep.Recent[2].Time) {
		t.Errorf("Recent not newest-first: %v", rep.Recent)
	}
	if rep.TotalCount != sloRingCap+10 {
		t.Errorf("TotalCount = %d", rep.TotalCount)
	}
	if rep.ByClass[EventFaultTrip] != sloRingCap+10 {
		t.Errorf("ByClass = %v", rep.ByClass)
	}
}

func TestSLOMonitorNilSafe(t *testing.T) {
	var m *SLOMonitor
	m.Record(EventPanic, "", "", "")
	if !m.Compliant() || m.WindowCount() != 0 {
		t.Fatal("nil monitor must be inert and compliant")
	}
	if rep := m.Report(5); !rep.Compliant {
		t.Fatal("nil monitor report must be compliant")
	}
}
