// Package serve turns the one-shot assessment pipeline into a
// long-running, multi-tenant HTTP/JSON service with service-grade
// observability: an async job model over core.Run, a Prometheus
// /metrics exposition of the obs registry, per-request trace IDs
// carried through the span tree and the structured logs, and an SLO
// critical-event monitor gating readiness.
package serve

import (
	"io"
	"log/slog"
)

// NewJSONLogger returns a structured logger writing one JSON object per
// line to w — the service's request/job log and the CLI's -watch cycle
// log share this constructor so every long-running mode of the tool
// speaks the same log dialect (time, level, msg, then typed attrs such
// as traceId, tenant, route, status, durationMs).
func NewJSONLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}
