package hazard

import (
	"math"
	"runtime"
	"sync"
	"time"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
)

// The parallel sweep fans the scenario stream out to a worker pool and
// merges per-scenario results back in enumeration order. It is
// observably identical to the sequential AnalyzeBudget — same S<n> IDs,
// same ordering, same risks, same budget and truncation semantics
// (largest fully-completed cardinality) — because:
//
//   - the producer assigns each scenario its 0-based stream position
//     (seq) before fan-out, and IDs derive from seq alone;
//   - the MaxScenarios cap is enforced by the producer, so exactly the
//     same prefix of the stream is analyzed as sequentially;
//   - the merge keeps only the contiguous prefix of completed scenarios
//     below the earliest failure/exhaustion, then applies the same
//     completed-cardinality fallback.
//
// Only the epa.Engine is shared between workers; it is immutable after
// construction and documented safe for concurrent Run calls.

// sweepJob is one scenario with its stream position.
type sweepJob struct {
	seq int
	sc  epa.Scenario
}

// sweepOutcome is one worker's verdict on a job: a scored result, a
// budget truncation, or a hard error.
type sweepOutcome struct {
	seq   int
	sr    ScenarioResult
	trunc *budget.Truncation
	err   error
}

// producerOutcome reports how enumeration ended: how many jobs were
// emitted and whether a cap or the budget stopped the stream.
type producerOutcome struct {
	emitted int
	trunc   *budget.Truncation
}

// AnalyzeParallel is Analyze with a worker pool of the given size
// sweeping the scenario space. parallelism <= 0 uses
// runtime.GOMAXPROCS(0); parallelism == 1 is exactly the sequential
// path. The output is deterministic and identical to Analyze.
func AnalyzeParallel(eng *epa.Engine, muts []faults.Mutation, maxCard int, reqs []Requirement, parallelism int) (*Analysis, error) {
	return AnalyzeParallelBudget(eng, muts, maxCard, reqs, nil, parallelism)
}

// AnalyzeParallelBudget is AnalyzeParallel under resource governance,
// with AnalyzeBudget's degradation semantics: the budget is polled per
// scenario (producer and workers), exhaustion truncates to the largest
// fully completed cardinality, and MaxScenarios caps the analyzed
// prefix deterministically.
func AnalyzeParallelBudget(eng *epa.Engine, muts []faults.Mutation, maxCard int, reqs []Requirement, bud *budget.Budget, parallelism int) (*Analysis, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism == 1 {
		return AnalyzeBudget(eng, muts, maxCard, reqs, bud)
	}
	if err := validateReqs(reqs); err != nil {
		return nil, err
	}
	start := time.Now()
	likelihoods := faults.LikelihoodIndex(muts)
	limits := bud.Limits()

	jobs := make(chan sweepJob, parallelism*4)
	outcomes := make(chan sweepOutcome, parallelism*4)
	produced := make(chan producerOutcome, 1)

	// Producer: enumerate in order, tagging each scenario with its
	// stream position. Budget poll and scenario cap live here so the
	// analyzed prefix matches the sequential sweep exactly.
	go func() {
		defer close(jobs)
		seq := 0
		var trunc *budget.Truncation
		faults.EnumerateStream(muts, maxCard, func(sc epa.Scenario) bool {
			if limits.MaxScenarios > 0 && seq >= limits.MaxScenarios {
				trunc = &budget.Truncation{Stage: "hazard", Reason: budget.ReasonScenarios}
				return false
			}
			if err := bud.Err("hazard"); err != nil {
				ex, _ := budget.Exhausted(err)
				trunc = &budget.Truncation{Stage: "hazard", Reason: ex.Reason}
				return false
			}
			jobs <- sweepJob{seq: seq, sc: sc}
			seq++
			return true
		})
		produced <- producerOutcome{emitted: seq, trunc: trunc}
	}()

	// Workers: one EPA run plus requirement evaluation per scenario,
	// against the shared immutable engine.
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				if err := bud.Err("hazard"); err != nil {
					ex, _ := budget.Exhausted(err)
					outcomes <- sweepOutcome{seq: jb.seq, trunc: &budget.Truncation{Stage: "hazard", Reason: ex.Reason}}
					continue
				}
				res, err := eng.RunBudget(jb.sc, bud)
				if err != nil {
					if ex, ok := budget.Exhausted(err); ok {
						outcomes <- sweepOutcome{seq: jb.seq, trunc: &budget.Truncation{Stage: "hazard", Reason: ex.Reason}}
					} else {
						outcomes <- sweepOutcome{seq: jb.seq, err: err}
					}
					continue
				}
				outcomes <- sweepOutcome{seq: jb.seq, sr: scoreResult(jb.seq, jb.sc, res, reqs, likelihoods)}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(outcomes)
	}()

	// Merge: collect everything, then keep the contiguous prefix below
	// the earliest failure. Memory matches the sequential sweep, which
	// also materializes every kept result.
	completed := map[int]ScenarioResult{}
	firstBad := math.MaxInt
	var badTrunc *budget.Truncation
	var badErr error
	for o := range outcomes {
		switch {
		case o.err != nil || o.trunc != nil:
			if o.seq < firstBad {
				firstBad = o.seq
				badTrunc, badErr = o.trunc, o.err
			}
		default:
			completed[o.seq] = o.sr
		}
	}
	prod := <-produced

	cut := prod.emitted
	trunc := prod.trunc
	if firstBad < cut {
		cut = firstBad
		trunc = badTrunc
		if badErr != nil {
			// Earliest event is a hard error: fail like the sequential
			// sweep would on that scenario.
			return nil, badErr
		}
	}
	out := &Analysis{Requirements: reqs}
	for seq := 0; seq < cut; seq++ {
		sr, ok := completed[seq]
		if !ok {
			// Defensive: a hole below the cut means a worker died
			// without reporting; treat the prefix up to it as the
			// result rather than mislabeling later scenarios.
			break
		}
		out.Scenarios = append(out.Scenarios, sr)
	}
	if trunc != nil {
		out.Truncation = trunc
		out.truncateToCompletedCardinality(muts, maxCard)
	}
	out.Sweep = &SweepStats{Workers: parallelism, Scenarios: len(out.Scenarios), Duration: time.Since(start)}
	return out, nil
}
