// Package store implements the crash-safe persistent EPA result cache
// (ROADMAP item 2c): an on-disk memo of scenario -> error-state vectors
// keyed by (engine hash, scenario bitmask), so repeated assessments of
// the same plant — resumed sweeps, the future service workload — skip
// completed propagation work.
//
// Durability model. The cache is a set of immutable append-only segment
// files under <dir>/<namespace>/. A segment is only ever published by
// writing a temp file in the same directory, fsyncing it, and renaming
// it into place (rename is atomic on POSIX filesystems), so a reader
// never observes a half-written segment under normal operation. Against
// abnormal operation — a torn write from a crashed process, bit rot, a
// truncated file — every record carries a CRC-32 checksum and the loader
// verifies it: a segment that fails verification is quarantined (moved
// aside, never deleted) and the records that validated before the
// corruption are kept, so one bad byte costs at most the tail of one
// segment and never fails the run. Lost entries are transparently
// recomputed and re-persisted by the sweep — the cache self-heals.
//
// A Cache is safe for concurrent use: lookups take a read lock, inserts
// a write lock. Hit/miss/heal counters are published to the metrics
// registry when one is configured.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/obs"
)

const (
	// segMagic heads every segment file; a file without it was never a
	// complete header write and is quarantined wholesale.
	segMagic = "CPSCACHE1\n"
	// recMagic heads every record inside a segment.
	recMagic = 0x43
	// quarantineDir collects segments that failed verification.
	quarantineDir = "quarantine"
	// tmpSuffix marks in-flight segment writes; the janitor removes
	// leftovers at Open/Close.
	tmpSuffix = ".tmp"
	// DefaultFlushEvery is how many pending records trigger an automatic
	// segment flush.
	DefaultFlushEvery = 256
)

// Options configures a Cache.
type Options struct {
	// FlushEvery publishes a new segment after this many pending Puts
	// (0 = DefaultFlushEvery, negative = only on Flush/Close).
	FlushEvery int
	// Registry receives store.* counters (nil = no metrics).
	Registry *obs.Registry
	// Injector arms the store.write / store.read chaos sites (nil = off).
	Injector *faultinject.Injector
}

// Stats is the cache's life-to-date effort accounting.
type Stats struct {
	// Hits / Misses count Get outcomes.
	Hits, Misses int64
	// Puts counts records accepted (deduplicated Puts excluded).
	Puts int64
	// Flushes counts published segments.
	Flushes int64
	// RecordsLoaded / SegmentsLoaded describe the state found at Open.
	RecordsLoaded, SegmentsLoaded int64
	// Quarantined counts segments moved aside for failed verification.
	Quarantined int64
	// HealedRecords counts records salvaged from quarantined segments
	// (the valid prefix before the corruption).
	HealedRecords int64
}

// Cache is one open (directory, namespace) result cache.
type Cache struct {
	dir  string // namespace directory
	opts Options

	mu      sync.RWMutex
	mem     map[string][]byte
	pending []pendingRec
	nextSeg int
	stats   Stats
	closed  bool

	cHits, cMisses, cPuts, cFlushes, cQuarantined, cHealed *obs.Counter
}

type pendingRec struct{ key, val []byte }

// Open loads (or creates) the cache for one namespace — callers derive
// the namespace from the engine hash and the candidate-mutation set, so
// incompatible results can never collide. Corrupt segments found during
// the load are quarantined, their valid prefixes salvaged, and the open
// still succeeds; only a genuinely unusable directory (permissions, not
// a directory) is an error.
func Open(dir string, namespace uint64, opts Options) (*Cache, error) {
	nsDir := filepath.Join(dir, fmt.Sprintf("%016x", namespace))
	if err := os.MkdirAll(nsDir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	c := &Cache{
		dir:  nsDir,
		opts: opts,
		mem:  map[string][]byte{},

		cHits:        opts.Registry.Counter("store.hits"),
		cMisses:      opts.Registry.Counter("store.misses"),
		cPuts:        opts.Registry.Counter("store.puts"),
		cFlushes:     opts.Registry.Counter("store.flushes"),
		cQuarantined: opts.Registry.Counter("store.quarantined"),
		cHealed:      opts.Registry.Counter("store.healed_records"),
	}
	if c.opts.FlushEvery == 0 {
		c.opts.FlushEvery = DefaultFlushEvery
	}
	if err := c.load(); err != nil {
		return nil, err
	}
	return c, nil
}

// load scans the namespace directory: removes stale temp files (the
// janitor half of the atomic-write protocol), reads every segment in
// name order, and quarantines the ones that fail verification.
func (c *Cache) load() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var segs []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			// A crash mid-write left its temp file; it was never
			// published, so removing it loses nothing.
			os.Remove(filepath.Join(c.dir, name))
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".rec"):
			segs = append(segs, name)
		}
	}
	sort.Strings(segs)
	for _, name := range segs {
		path := filepath.Join(c.dir, name)
		var n int
		if _, err := fmt.Sscanf(name, "seg-%06d.rec", &n); err == nil && n >= c.nextSeg {
			c.nextSeg = n + 1
		}
		recs, corrupt := loadSegment(path)
		if corrupt != nil {
			if err := c.quarantine(path); err != nil {
				return err
			}
			c.stats.Quarantined++
			c.cQuarantined.Inc()
			c.stats.HealedRecords += int64(len(recs))
			c.cHealed.Add(int64(len(recs)))
			// Salvaged records go back to pending so the next flush
			// re-persists them into a clean segment — the self-heal.
			for _, r := range recs {
				if _, dup := c.mem[string(r.key)]; !dup {
					c.pending = append(c.pending, r)
				}
			}
		} else {
			c.stats.SegmentsLoaded++
		}
		for _, r := range recs {
			c.mem[string(r.key)] = r.val
		}
		c.stats.RecordsLoaded += int64(len(recs))
	}
	return nil
}

// quarantine moves a failed segment aside, keeping the evidence for a
// post-mortem instead of deleting it.
func (c *Cache) quarantine(path string) error {
	qdir := filepath.Join(c.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("store: quarantine: %w", err)
	}
	dst := filepath.Join(qdir, filepath.Base(path)+".quarantined")
	if err := os.Rename(path, dst); err != nil {
		return fmt.Errorf("store: quarantine: %w", err)
	}
	return nil
}

// Get looks the key up, reporting a copy-free view of the cached value.
// The returned slice must not be modified.
func (c *Cache) Get(key []byte) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	if inj := c.opts.Injector; inj != nil {
		if err := inj.Fire(faultinject.SiteStoreRead); err != nil {
			// An injected read failure degrades to a miss — exactly what
			// a real unreadable entry does.
			c.mu.Lock()
			c.stats.Misses++
			c.mu.Unlock()
			c.cMisses.Inc()
			return nil, false
		}
	}
	c.mu.RLock()
	v, ok := c.mem[string(key)]
	c.mu.RUnlock()
	c.mu.Lock()
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	c.mu.Unlock()
	if ok {
		c.cHits.Inc()
	} else {
		c.cMisses.Inc()
	}
	return v, ok
}

// Put records a key/value pair and schedules it for durable publication.
// Re-putting an existing key is a no-op (values are deterministic
// functions of the key). Put never fails: durability errors surface on
// Flush/Close, and an unflushed record still serves in-memory hits.
func (c *Cache) Put(key, val []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if _, dup := c.mem[string(key)]; dup {
		c.mu.Unlock()
		return
	}
	k := append([]byte(nil), key...)
	v := append([]byte(nil), val...)
	c.mem[string(k)] = v
	c.pending = append(c.pending, pendingRec{key: k, val: v})
	c.stats.Puts++
	doFlush := c.opts.FlushEvery > 0 && len(c.pending) >= c.opts.FlushEvery
	var err error
	if doFlush {
		err = c.flushLocked()
	}
	c.mu.Unlock()
	c.cPuts.Inc()
	_ = err // auto-flush failures surface on the explicit Flush/Close
}

// Flush publishes the pending records as one new segment (no-op when
// nothing is pending). On failure the records stay pending — a later
// Flush retries into a fresh segment.
func (c *Cache) Flush() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *Cache) flushLocked() error {
	if len(c.pending) == 0 {
		return nil
	}
	buf := []byte(segMagic)
	for _, r := range c.pending {
		buf = appendRecord(buf, r.key, r.val)
	}
	seg := filepath.Join(c.dir, fmt.Sprintf("seg-%06d.rec", c.nextSeg))
	c.nextSeg++ // never reuse a name, even after a failed write
	if inj := c.opts.Injector; inj != nil {
		if err := inj.Fire(faultinject.SiteStoreWrite); err != nil {
			if faultinject.IsTorn(err) {
				// Simulate a crash mid-write of a non-atomic writer: half
				// a segment lands at the final path. The next Open must
				// quarantine it and salvage the valid prefix.
				_ = os.WriteFile(seg, buf[:len(buf)/2], 0o644)
			}
			return faultinject.Transient(fmt.Errorf("store: flush %s: %w", filepath.Base(seg), err))
		}
	}
	if err := atomicWrite(seg, buf); err != nil {
		return faultinject.Transient(fmt.Errorf("store: flush: %w", err))
	}
	c.pending = nil
	c.stats.Flushes++
	c.cFlushes.Inc()
	return nil
}

// Close flushes pending records and sweeps leftover temp files. The
// cache must not be used afterwards.
func (c *Cache) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	err := c.flushLocked()
	if entries, derr := os.ReadDir(c.dir); derr == nil {
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), tmpSuffix) {
				os.Remove(filepath.Join(c.dir, e.Name()))
			}
		}
	}
	return err
}

// Stats returns a snapshot of the effort counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.stats
}

// Len reports the number of cached entries (memory view).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.mem)
}

// Range calls f for every record until f returns false. Iteration order
// is unspecified. The key and value slices are snapshots the callback
// may retain; counters are untouched (a scan is not a lookup). The
// snapshot is taken under the read lock, so Range never observes a
// half-applied Put; records added during the iteration may or may not
// be visited. No-op on a nil cache.
func (c *Cache) Range(f func(key, val []byte) bool) {
	if c == nil {
		return
	}
	c.mu.RLock()
	type rec struct{ k, v []byte }
	recs := make([]rec, 0, len(c.mem))
	for k, v := range c.mem {
		recs = append(recs, rec{[]byte(k), v})
	}
	c.mu.RUnlock()
	for _, r := range recs {
		if !f(r.k, append([]byte(nil), r.v...)) {
			return
		}
	}
}

// atomicWrite publishes data at path via the temp-file + fsync + rename
// protocol. The deferred remove is the janitor: on any failure (or a
// panic unwinding through) the temp file disappears; after a successful
// rename it is a no-op.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".*"+tmpSuffix)
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer os.Remove(tmp)
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	// Persist the rename itself: fsync the directory. Best-effort — some
	// filesystems refuse directory fsync; the rename is still atomic.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// AtomicWrite is the exported temp-file+fsync+rename protocol, shared by
// the sweep checkpoint writer so every durable artifact in the pipeline
// has identical crash semantics.
func AtomicWrite(path string, data []byte) error { return atomicWrite(path, data) }

// appendRecord encodes one record:
//
//	0x43 | uvarint keyLen | key | uvarint valLen | val | crc32(all prior) LE
func appendRecord(buf, key, val []byte) []byte {
	start := len(buf)
	buf = append(buf, recMagic)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(val)))
	buf = append(buf, val...)
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// decodeRecord parses one record off the front of data, returning the
// key, value, and remaining bytes. Length fields are validated against
// the available bytes before any slicing, so arbitrary (fuzzed or
// corrupt) input fails cleanly instead of panicking or over-allocating.
func decodeRecord(data []byte) (key, val, rest []byte, err error) {
	if len(data) == 0 {
		return nil, nil, nil, fmt.Errorf("store: empty record")
	}
	if data[0] != recMagic {
		return nil, nil, nil, fmt.Errorf("store: bad record magic %#x", data[0])
	}
	p := 1
	keyLen, n := binary.Uvarint(data[p:])
	if n <= 0 || keyLen > uint64(len(data)-p-n) {
		return nil, nil, nil, fmt.Errorf("store: bad key length")
	}
	p += n
	key = data[p : p+int(keyLen)]
	p += int(keyLen)
	valLen, n := binary.Uvarint(data[p:])
	if n <= 0 || valLen > uint64(len(data)-p-n) {
		return nil, nil, nil, fmt.Errorf("store: bad value length")
	}
	p += n
	val = data[p : p+int(valLen)]
	p += int(valLen)
	if len(data)-p < 4 {
		return nil, nil, nil, fmt.Errorf("store: record truncated before checksum")
	}
	want := binary.LittleEndian.Uint32(data[p : p+4])
	if got := crc32.ChecksumIEEE(data[:p]); got != want {
		return nil, nil, nil, fmt.Errorf("store: checksum mismatch: %08x != %08x", got, want)
	}
	return key, val, data[p+4:], nil
}

// loadSegment reads one segment, returning every record that verified
// and a non-nil error describing the first corruption (nil for a clean
// segment). The valid prefix before a corruption is always returned —
// that is what self-healing salvages.
func loadSegment(path string) (recs []pendingRec, corrupt error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(string(data), segMagic) {
		return nil, fmt.Errorf("store: %s: bad segment header", filepath.Base(path))
	}
	rest := data[len(segMagic):]
	for len(rest) > 0 {
		key, val, next, err := decodeRecord(rest)
		if err != nil {
			return recs, fmt.Errorf("store: %s: %w", filepath.Base(path), err)
		}
		recs = append(recs, pendingRec{
			key: append([]byte(nil), key...),
			val: append([]byte(nil), val...),
		})
		rest = next
	}
	return recs, nil
}
