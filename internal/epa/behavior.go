package epa

import (
	"fmt"
	"sort"
	"strings"

	"cpsrisk/internal/sysmodel"
)

// FaultEffect is the local impact of an active fault mode: the component
// emits the given error modes on one of its ports (paper §IV-A step 2 and
// Listing 2: the fault model).
type FaultEffect struct {
	// Fault is the fault-mode name (must exist on the component type).
	Fault string
	// Port is the affected port ("" = every out/inout port).
	Port string
	// Emit is the error state injected on the port.
	Emit ErrState
}

// TransferRule describes intra-component error propagation declaratively:
// when any mode of Match is present on the From port, the modes of Emit
// appear on the To port. Optional fault guards make propagation
// fault-dependent (a crashed controller stops propagating commands but
// emits omissions, etc.). Declarative rules keep the native engine and the
// ASP encoding semantically identical, and are monotone by construction.
type TransferRule struct {
	From  string
	Match ErrState
	To    string
	Emit  ErrState
	// WhenFault fires the rule only while the fault is active on the
	// component instance.
	WhenFault string
	// UnlessFault suppresses the rule while the fault is active.
	UnlessFault string
}

// TypeBehavior is the EPA behaviour of one component type.
type TypeBehavior struct {
	Type      string
	Effects   []FaultEffect
	Transfers []TransferRule
}

// BehaviorLibrary maps component types to behaviours. Types without an
// entry get DefaultBehavior (identity propagation from every input to
// every output).
type BehaviorLibrary struct {
	types *sysmodel.TypeLibrary
	byTyp map[string]*TypeBehavior
}

// NewBehaviorLibrary creates a behaviour library over a type library.
func NewBehaviorLibrary(types *sysmodel.TypeLibrary) *BehaviorLibrary {
	return &BehaviorLibrary{types: types, byTyp: map[string]*TypeBehavior{}}
}

// Register installs a behaviour; the component type must exist and every
// referenced port and fault must be declared on it.
func (l *BehaviorLibrary) Register(b *TypeBehavior) error {
	ct, ok := l.types.Get(b.Type)
	if !ok {
		return fmt.Errorf("epa: behavior for unknown type %q", b.Type)
	}
	if _, dup := l.byTyp[b.Type]; dup {
		return fmt.Errorf("epa: duplicate behavior for type %q", b.Type)
	}
	for _, e := range b.Effects {
		if _, ok := ct.FaultMode(e.Fault); !ok {
			return fmt.Errorf("epa: behavior %q effect references unknown fault %q", b.Type, e.Fault)
		}
		if e.Port != "" {
			if _, ok := ct.Port(e.Port); !ok {
				return fmt.Errorf("epa: behavior %q effect references unknown port %q", b.Type, e.Port)
			}
		}
	}
	for _, tr := range b.Transfers {
		for _, port := range []string{tr.From, tr.To} {
			if _, ok := ct.Port(port); !ok {
				return fmt.Errorf("epa: behavior %q transfer references unknown port %q", b.Type, port)
			}
		}
		for _, f := range []string{tr.WhenFault, tr.UnlessFault} {
			if f != "" {
				if _, ok := ct.FaultMode(f); !ok {
					return fmt.Errorf("epa: behavior %q transfer references unknown fault %q", b.Type, f)
				}
			}
		}
		if tr.Match == OK || tr.Emit == OK {
			return fmt.Errorf("epa: behavior %q has a transfer with empty match or emit", b.Type)
		}
	}
	l.byTyp[b.Type] = b
	return nil
}

// MustRegister panics on error; for static behaviour libraries.
func (l *BehaviorLibrary) MustRegister(b *TypeBehavior) {
	if err := l.Register(b); err != nil {
		panic(err)
	}
}

// For returns the behaviour of a component type, synthesizing
// DefaultBehavior when none was registered.
func (l *BehaviorLibrary) For(typeName string) (*TypeBehavior, error) {
	if b, ok := l.byTyp[typeName]; ok {
		return b, nil
	}
	ct, ok := l.types.Get(typeName)
	if !ok {
		return nil, fmt.Errorf("epa: unknown component type %q", typeName)
	}
	return DefaultBehavior(ct), nil
}

// Types returns the underlying type library.
func (l *BehaviorLibrary) Types() *sysmodel.TypeLibrary { return l.types }

// DefaultBehavior is the conservative default: every error mode on any
// input (in/inout) port propagates unchanged to every output (out/inout)
// port, and every declared fault mode emits the full error state on all
// outputs. Over-approximate, never unsound — the "no hazardous attack is
// overlooked" default of the paper's abstraction discipline.
func DefaultBehavior(ct *sysmodel.ComponentType) *TypeBehavior {
	b := &TypeBehavior{Type: ct.Name}
	var ins, outs []string
	for _, p := range ct.Ports {
		switch p.Dir {
		case sysmodel.In:
			ins = append(ins, p.Name)
		case sysmodel.Out:
			outs = append(outs, p.Name)
		case sysmodel.InOut:
			ins = append(ins, p.Name)
			outs = append(outs, p.Name)
		}
	}
	for _, in := range ins {
		for _, out := range outs {
			if in == out {
				continue
			}
			for _, m := range AllModes {
				b.Transfers = append(b.Transfers, TransferRule{
					From: in, Match: StateOf(m), To: out, Emit: StateOf(m),
				})
			}
		}
	}
	for _, fm := range ct.FaultModes {
		b.Effects = append(b.Effects, FaultEffect{Fault: fm.Name, Emit: AnyError})
	}
	return b
}

// IdentityTransfers builds per-mode identity transfer rules from one port
// to another — the common building block for custom behaviours.
func IdentityTransfers(from, to string) []TransferRule {
	out := make([]TransferRule, 0, len(AllModes))
	for _, m := range AllModes {
		out = append(out, TransferRule{From: from, Match: StateOf(m), To: to, Emit: StateOf(m)})
	}
	return out
}

// Activation is one active fault mode on a component instance.
type Activation struct {
	Component string `json:"component"`
	Fault     string `json:"fault"`
}

// String implements fmt.Stringer.
func (a Activation) String() string { return a.Component + ":" + a.Fault }

// Scenario is a set of simultaneous activations (the paper's "combination
// of fault modes", §IV-A).
type Scenario []Activation

// Has reports whether the scenario activates the fault on the component.
func (s Scenario) Has(component, fault string) bool {
	for _, a := range s {
		if a.Component == component && a.Fault == fault {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer.
func (s Scenario) String() string {
	if len(s) == 0 {
		return "{}"
	}
	parts := make([]string, len(s))
	for i, a := range s {
		parts[i] = a.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// Key returns a canonical identity string for the scenario.
func (s Scenario) Key() string { return s.String() }
