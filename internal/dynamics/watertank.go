package dynamics

import "cpsrisk/internal/plant"

// Fault keys of the water-tank dynamic model, matching the paper's F1..F4.
var (
	// KeyF1 is the input valve stuck open.
	KeyF1 = plant.CompInValve + ":" + plant.FaultStuckOpen
	// KeyF2 is the output valve stuck closed.
	KeyF2 = plant.CompOutValve + ":" + plant.FaultStuckClosed
	// KeyF3 is the HMI losing the alert.
	KeyF3 = plant.CompHMI + ":" + plant.FaultNoSignal
	// KeyF4 is the compromised engineering workstation.
	KeyF4 = plant.CompEWS + ":" + plant.FaultCompromised
)

// Variable and value names of the water-tank dynamic model.
const (
	VarLevel = "level"
	VarMode  = "mode"
	VarAlert = "alert"

	ModeFill  = "fill"
	ModeDrain = "drain"
	AlertOff  = "off"
	AlertOn   = "on"
)

// LevelValues is the qualitative level domain, lowest first.
var LevelValues = []string{"empty", "low", "normal", "high", "overflow"}

// WaterTank builds the dynamic qualitative model of the §VII case study —
// the third, most precise abstraction level of the CEGAR hierarchy. Its
// verdicts coincide with the concrete plant simulator on every F1..F4
// combination (cross-checked in the tests), while the static qualitative
// EPA reproduces the paper's over-approximating Table II. Level dynamics:
//
//	mode flips to fill at low/empty and to drain at high/overflow
//	  (the hysteresis controller);
//	the level rises while filling (drain capacity exceeds fill capacity,
//	  so it falls whenever draining succeeds);
//	in drain mode the level falls unless draining is blocked (F2 stuck
//	  closed, or F4 forcing the output closed); it rises there only when
//	  water is forced in while draining is blocked (F4, or F1 together
//	  with F2) — Listing 2's frame rule keeps it otherwise;
//	the alert latches on at overflow unless the HMI is silenced (F3) or
//	  managed by the attacker (F4).
func WaterTank() *System {
	s := &System{
		Domains: []Domain{
			{Name: "level5", Values: LevelValues},
			{Name: "mode2", Values: []string{ModeFill, ModeDrain}},
			{Name: "alert2", Values: []string{AlertOff, AlertOn}},
		},
		Vars: []Var{
			{Name: VarLevel, Domain: "level5", Init: "normal"},
			{Name: VarMode, Domain: "mode2", Init: ModeDrain},
			{Name: VarAlert, Domain: "alert2", Init: AlertOff},
		},
	}
	at := func(val string) Cond { return Cond{Var: VarLevel, Val: val} }
	mode := func(val string) Cond { return Cond{Var: VarMode, Val: val} }

	// Hysteresis mode switching.
	s.Rules = append(s.Rules,
		Rule{Target: VarMode, Next: ModeFill, When: []Cond{at("empty")}},
		Rule{Target: VarMode, Next: ModeFill, When: []Cond{at("low")}},
		Rule{Target: VarMode, Next: ModeDrain, When: []Cond{at("high")}},
		Rule{Target: VarMode, Next: ModeDrain, When: []Cond{at("overflow")}},
	)
	// Level physics, instanced per adjacent level pair.
	for i := 0; i+1 < len(LevelValues); i++ {
		lo, hi := LevelValues[i], LevelValues[i+1]
		// Filling raises the level one region per step, but the hysteresis
		// margin stops it at "high": the controller flips to drain before
		// the overflow region (the plant's 0.7 high mark vs 1.0 capacity).
		// Only forced inflow with blocked draining reaches overflow.
		if hi != "overflow" {
			s.Rules = append(s.Rules, Rule{
				Target: VarLevel, Next: hi,
				When: []Cond{at(lo), mode(ModeFill)},
			})
		}
		// Forced inflow with blocked outflow raises it even while the
		// controller tries to drain.
		s.Rules = append(s.Rules,
			Rule{Target: VarLevel, Next: hi,
				When:       []Cond{at(lo), mode(ModeDrain)},
				WhenFaults: []string{KeyF4}},
			Rule{Target: VarLevel, Next: hi,
				When:         []Cond{at(lo), mode(ModeDrain)},
				WhenFaults:   []string{KeyF1, KeyF2},
				UnlessFaults: []string{KeyF4}},
		)
		// Draining lowers it unless the output path is blocked.
		s.Rules = append(s.Rules, Rule{
			Target: VarLevel, Next: lo,
			When:         []Cond{at(hi), mode(ModeDrain)},
			UnlessFaults: []string{KeyF2, KeyF4},
		})
	}
	// Alert latches at overflow unless silenced; it also fires as soon as
	// overflow becomes imminent (high level with forced inflow and blocked
	// draining), mirroring the plant's same-step alerting — without this,
	// a one-step alert delay lets bounded-horizon attack synthesis place
	// the overflow on the final step and report a spurious R2 violation.
	s.Rules = append(s.Rules,
		Rule{
			Target: VarAlert, Next: AlertOn,
			When:         []Cond{at("overflow")},
			UnlessFaults: []string{KeyF3, KeyF4},
		},
		Rule{
			Target: VarAlert, Next: AlertOn,
			When:         []Cond{at("high"), mode(ModeDrain)},
			WhenFaults:   []string{KeyF1, KeyF2},
			UnlessFaults: []string{KeyF3, KeyF4},
		},
	)
	return s
}

// Overflowed reports whether the trajectory reaches the overflow level.
func Overflowed(tr *Trajectory) bool {
	for t := 0; t < tr.Horizon; t++ {
		if tr.Value(t, VarLevel) == "overflow" {
			return true
		}
	}
	return false
}

// Alerted reports whether the alert ever latches on.
func Alerted(tr *Trajectory) bool {
	for t := 0; t < tr.Horizon; t++ {
		if tr.Value(t, VarAlert) == AlertOn {
			return true
		}
	}
	return false
}
