package main

import (
	"encoding/json"
	"io"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestRunWatchStructuredLog: every -watch re-assessment cycle emits one
// structured JSON line on stderr carrying the trigger mtime, the
// artifact resolution, and the cycle duration — the supervised-process
// contract shared with riskserve's logs.
func TestRunWatchStructuredLog(t *testing.T) {
	dir := t.TempDir()
	modelPath := dir + "/plant.json"
	editModel(t, "../../models/sme-plant.json", modelPath, nil)

	// Capture stderr for the duration of the watch run.
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStderr := os.Stderr
	os.Stderr = w
	restore := func() { os.Stderr = oldStderr }
	defer restore()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-model", modelPath,
			"-types", "../../models/types.json",
			"-maxcard", "1",
			"-watch",
			"-watch-interval", "20ms",
			"-watch-max", "2",
		}, io.Discard)
	}()

	deadline := time.After(30 * time.Second)
	for i := 0; ; i++ {
		select {
		case err := <-done:
			restore()
			w.Close()
			if err != nil {
				t.Fatal(err)
			}
			captured, err := io.ReadAll(r)
			if err != nil {
				t.Fatal(err)
			}
			assertWatchLog(t, string(captured))
			return
		case <-deadline:
			restore()
			t.Fatal("watch did not complete two runs in 30s")
		case <-time.After(100 * time.Millisecond):
			editModel(t, "../../models/sme-plant.json", modelPath, annotatePanel("edit "+strconv.Itoa(i)))
		}
	}
}

func assertWatchLog(t *testing.T, captured string) {
	t.Helper()
	type cycle struct {
		Msg        string `json:"msg"`
		Run        int    `json:"run"`
		Model      string `json:"model"`
		Trigger    string `json:"trigger"`
		Artifact   string `json:"artifact"`
		DurationMS *int64 `json:"durationMs"`
	}
	var cycles []cycle
	for _, line := range strings.Split(captured, "\n") {
		if !strings.Contains(line, "watch-cycle") {
			continue
		}
		var c cycle
		if err := json.Unmarshal([]byte(line), &c); err != nil {
			t.Fatalf("watch-cycle line is not JSON: %q: %v", line, err)
		}
		cycles = append(cycles, c)
	}
	if len(cycles) != 2 {
		t.Fatalf("captured %d watch-cycle lines, want 2:\n%s", len(cycles), captured)
	}
	for i, c := range cycles {
		if c.Run != i+1 {
			t.Errorf("cycle %d: run = %d", i, c.Run)
		}
		if c.Trigger == "" {
			t.Errorf("cycle %d: no trigger mtime", i)
		}
		if c.DurationMS == nil {
			t.Errorf("cycle %d: no durationMs", i)
		}
		if c.Model == "" {
			t.Errorf("cycle %d: no model path", i)
		}
	}
	// The first cycle compiles cold; the edited re-run resolves delta.
	if cycles[0].Artifact != "cold" || cycles[1].Artifact != "delta" {
		t.Errorf("artifact sequence = %q, %q; want cold, delta",
			cycles[0].Artifact, cycles[1].Artifact)
	}
}
