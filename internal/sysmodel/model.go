package sysmodel

import (
	"fmt"
	"sort"
)

// Model is a system model: components, connections, and requirements,
// validated against a component-type library.
type Model struct {
	Name         string        `json:"name"`
	Components   []*Component  `json:"components"`
	Connections  []Connection  `json:"connections"`
	Requirements []Requirement `json:"requirements,omitempty"`

	index map[string]*Component
}

// NewModel creates an empty model.
func NewModel(name string) *Model {
	return &Model{Name: name, index: map[string]*Component{}}
}

// AddComponent adds a component instance; duplicate IDs are an error.
func (m *Model) AddComponent(c *Component) error {
	if c.ID == "" {
		return fmt.Errorf("sysmodel: component with empty ID in model %q", m.Name)
	}
	m.ensureIndex()
	if _, dup := m.index[c.ID]; dup {
		return fmt.Errorf("sysmodel: duplicate component ID %q", c.ID)
	}
	m.Components = append(m.Components, c)
	m.index[c.ID] = c
	return nil
}

// MustAddComponent panics on error; for static model builders.
func (m *Model) MustAddComponent(c *Component) {
	if err := m.AddComponent(c); err != nil {
		panic(err)
	}
}

// Component looks up a component by ID.
func (m *Model) Component(id string) (*Component, bool) {
	m.ensureIndex()
	c, ok := m.index[id]
	return c, ok
}

func (m *Model) ensureIndex() {
	if m.index != nil {
		return
	}
	m.index = make(map[string]*Component, len(m.Components))
	for _, c := range m.Components {
		m.index[c.ID] = c
	}
}

// Connect adds a connection between two ports.
func (m *Model) Connect(fromComp, fromPort, toComp, toPort string, flow FlowKind) {
	m.Connections = append(m.Connections, Connection{
		From: PortRef{Component: fromComp, Port: fromPort},
		To:   PortRef{Component: toComp, Port: toPort},
		Flow: flow,
	})
}

// AddRequirement appends a requirement.
func (m *Model) AddRequirement(r Requirement) {
	m.Requirements = append(m.Requirements, r)
}

// ComponentIDs returns all component IDs, sorted.
func (m *Model) ComponentIDs() []string {
	out := make([]string, 0, len(m.Components))
	for _, c := range m.Components {
		out = append(out, c.ID)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the model.
func (m *Model) Clone() *Model {
	out := NewModel(m.Name)
	for _, c := range m.Components {
		out.MustAddComponent(cloneComponent(c))
	}
	out.Connections = append([]Connection(nil), m.Connections...)
	out.Requirements = append([]Requirement(nil), m.Requirements...)
	return out
}

func cloneComponent(c *Component) *Component {
	out := &Component{ID: c.ID, Name: c.Name, Type: c.Type, Layer: c.Layer}
	if c.Attrs != nil {
		out.Attrs = make(map[string]string, len(c.Attrs))
		for k, v := range c.Attrs {
			out.Attrs[k] = v
		}
	}
	if c.Sub != nil {
		out.Sub = c.Sub.Clone()
	}
	if c.Bindings != nil {
		out.Bindings = make(map[string]PortRef, len(c.Bindings))
		for k, v := range c.Bindings {
			out.Bindings[k] = v
		}
	}
	return out
}

// Merge unions aspect models into one (paper Fig. 1: "merging the different
// aspect models ... into a single model"). Component IDs shared between
// aspects must agree on the type; attributes are unioned with
// last-writer-wins on conflicts reported as errors.
func Merge(name string, aspects ...*Model) (*Model, error) {
	out := NewModel(name)
	for _, a := range aspects {
		for _, c := range a.Components {
			existing, ok := out.Component(c.ID)
			if !ok {
				out.MustAddComponent(cloneComponent(c))
				continue
			}
			if existing.Type != c.Type {
				return nil, fmt.Errorf("sysmodel: aspect conflict on %q: type %q vs %q",
					c.ID, existing.Type, c.Type)
			}
			for k, v := range c.Attrs {
				if old, dup := existing.Attrs[k]; dup && old != v {
					return nil, fmt.Errorf("sysmodel: aspect conflict on %q attr %q: %q vs %q",
						c.ID, k, old, v)
				}
				existing.SetAttr(k, v)
			}
			if c.Sub != nil && existing.Sub == nil {
				existing.Sub = c.Sub.Clone()
				existing.Bindings = c.Bindings
			}
		}
		out.Connections = append(out.Connections, a.Connections...)
		out.Requirements = append(out.Requirements, a.Requirements...)
	}
	out.dedupeConnections()
	return out, nil
}

func (m *Model) dedupeConnections() {
	seen := map[string]bool{}
	kept := m.Connections[:0]
	for _, c := range m.Connections {
		key := c.From.String() + ">" + c.To.String() + "#" + c.Flow.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		kept = append(kept, c)
	}
	m.Connections = kept
}

// Validate checks model well-formedness against the library:
// component types exist, connection endpoints exist with compatible
// directions and flow kinds, composite bindings resolve, and requirement
// IDs are unique. Composite inner models are validated recursively.
func (m *Model) Validate(lib *TypeLibrary) error {
	m.ensureIndex()
	for _, c := range m.Components {
		ct, ok := lib.Get(c.Type)
		if !ok {
			return fmt.Errorf("sysmodel: component %q has unknown type %q", c.ID, c.Type)
		}
		if c.Sub != nil {
			if err := c.Sub.Validate(lib); err != nil {
				return fmt.Errorf("composite %q: %w", c.ID, err)
			}
			for outer, inner := range c.Bindings {
				if _, ok := ct.Port(outer); !ok {
					return fmt.Errorf("sysmodel: composite %q binds unknown outer port %q", c.ID, outer)
				}
				if err := c.Sub.checkPort(lib, inner, 0); err != nil {
					return fmt.Errorf("composite %q binding %q: %w", c.ID, outer, err)
				}
			}
		}
	}
	for i, conn := range m.Connections {
		fromSpec, err := m.portSpec(lib, conn.From)
		if err != nil {
			return fmt.Errorf("connection %d: %w", i, err)
		}
		toSpec, err := m.portSpec(lib, conn.To)
		if err != nil {
			return fmt.Errorf("connection %d: %w", i, err)
		}
		if fromSpec.Flow != conn.Flow || toSpec.Flow != conn.Flow {
			return fmt.Errorf("connection %d (%s -> %s): flow mismatch (%s port vs %s connection)",
				i, conn.From, conn.To, fromSpec.Flow, conn.Flow)
		}
		switch conn.Flow {
		case SignalFlow:
			if fromSpec.Dir != Out || toSpec.Dir != In {
				return fmt.Errorf("connection %d (%s -> %s): signal flows must go out -> in, got %s -> %s",
					i, conn.From, conn.To, fromSpec.Dir, toSpec.Dir)
			}
		case QuantityFlow:
			if fromSpec.Dir != InOut || toSpec.Dir != InOut {
				return fmt.Errorf("connection %d (%s -> %s): quantity flows need inout ports, got %s -> %s",
					i, conn.From, conn.To, fromSpec.Dir, toSpec.Dir)
			}
		default:
			return fmt.Errorf("connection %d: unknown flow kind", i)
		}
	}
	seen := map[string]bool{}
	for _, r := range m.Requirements {
		if r.ID == "" {
			return fmt.Errorf("sysmodel: requirement with empty ID")
		}
		if seen[r.ID] {
			return fmt.Errorf("sysmodel: duplicate requirement ID %q", r.ID)
		}
		seen[r.ID] = true
	}
	return nil
}

func (m *Model) portSpec(lib *TypeLibrary, ref PortRef) (PortSpec, error) {
	c, ok := m.Component(ref.Component)
	if !ok {
		return PortSpec{}, fmt.Errorf("unknown component %q", ref.Component)
	}
	ct, ok := lib.Get(c.Type)
	if !ok {
		return PortSpec{}, fmt.Errorf("component %q has unknown type %q", ref.Component, c.Type)
	}
	spec, ok := ct.Port(ref.Port)
	if !ok {
		return PortSpec{}, fmt.Errorf("component %q (type %q) has no port %q", ref.Component, c.Type, ref.Port)
	}
	return spec, nil
}

const maxBindingDepth = 32

func (m *Model) checkPort(lib *TypeLibrary, ref PortRef, depth int) error {
	if depth > maxBindingDepth {
		return fmt.Errorf("binding nesting exceeds %d", maxBindingDepth)
	}
	_, err := m.portSpec(lib, ref)
	return err
}

// Stats summarizes model size for reports.
type Stats struct {
	Components  int
	Composites  int
	Connections int
	// Depth is the maximum composite nesting depth.
	Depth int
}

// Stats computes model statistics (recursively counting inner models).
func (m *Model) Stats() Stats {
	st := Stats{Connections: len(m.Connections)}
	maxDepth := 0
	for _, c := range m.Components {
		st.Components++
		if c.Sub != nil {
			st.Composites++
			inner := c.Sub.Stats()
			st.Components += inner.Components
			st.Composites += inner.Composites
			st.Connections += inner.Connections
			if inner.Depth+1 > maxDepth {
				maxDepth = inner.Depth + 1
			}
		}
	}
	st.Depth = maxDepth
	return st
}
