package dynamics

import (
	"fmt"
	"sort"

	"cpsrisk/internal/logic"
	"cpsrisk/internal/solver"
	"cpsrisk/internal/temporal"
)

// Schedule is a synthesized fault-injection schedule: which candidate
// faults the attacker activates and when.
type Schedule []Injection

// Key renders a canonical identity for the schedule.
func (s Schedule) Key() string {
	parts := make([]string, len(s))
	for i, inj := range s {
		parts[i] = fmt.Sprintf("%s@%d", inj.Key, inj.AtStep)
	}
	sort.Strings(parts)
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return "{" + out + "}"
}

// Synthesize searches for a fault-injection schedule that makes the LTLf
// requirement fail within the horizon: the embedded formal method used
// offensively ("what is the attack?") rather than defensively. The
// encoding lets the solver choose, for at most maxActive candidate
// faults, an activation step; the system dynamics then evolve
// deterministically and the negated requirement is asserted. Every
// returned model is a concrete, replayable attack schedule; ok is false
// when no schedule exists — a bounded proof of safety against the
// candidate set.
//
// Requirement propositions are holds(var, val) atoms, e.g.
// "G !holds(level,overflow)".
func Synthesize(sys *System, horizon int, candidates []string, maxActive int,
	requirement temporal.Formula) (Schedule, bool, error) {
	if len(candidates) == 0 {
		return nil, false, fmt.Errorf("dynamics: no candidate faults")
	}
	prog, err := sys.Encode(horizon, nil)
	if err != nil {
		return nil, false, err
	}
	// Attack-schedule choice: each candidate picks at most one start step;
	// at most maxActive candidates start at all.
	for _, key := range candidates {
		prog.AddFact(logic.A("candidate", logic.Sym(key)))
	}
	upper := logic.Unbounded
	if maxActive >= 0 {
		upper = maxActive
	}
	prog.AddRule(logic.ChoiceRule(logic.Unbounded, upper, []logic.ChoiceElem{{
		Atom: logic.A("starts", logic.Var("K"), logic.Var("T")),
		Cond: []logic.Literal{
			logic.Pos(logic.A("candidate", logic.Var("K"))),
			logic.Pos(logic.A("time", logic.Var("T"))),
		},
	}}))
	scheduled, err := logic.Parse(`
		scheduled(K) :- starts(K, T).
		:- starts(K, T1), starts(K, T2), T1 < T2.
		dyn_active(K, T2) :- starts(K, T1), time(T2), T2 >= T1.
	`)
	if err != nil {
		return nil, false, err
	}
	prog.Extend(scheduled)
	// The requirement must FAIL: require its negation at step 0.
	u := temporal.NewUnroller(horizon)
	if err := u.Require(prog, temporal.Not(requirement)); err != nil {
		return nil, false, err
	}
	// Prefer the least intrusive attack: fewest scheduled faults, then
	// latest possible... keep it simple: minimize the schedule size.
	prog.AddMinimize(logic.MinimizeElem{
		Weight:   logic.Num(1),
		Priority: 1,
		Tuple:    []logic.Term{logic.Var("K")},
		Cond:     []logic.BodyElem{logic.Pos(logic.A("scheduled", logic.Var("K")))},
	})

	res, err := solver.SolveProgram(prog, solver.Options{Optimize: true, MaxModels: 1})
	if err != nil {
		return nil, false, err
	}
	if len(res.Models) == 0 {
		return nil, false, nil
	}
	m := res.Models[0]
	var schedule Schedule
	for _, key := range candidates {
		for t := 0; t < horizon; t++ {
			atom := logic.A("starts", logic.Sym(key), logic.Num(t))
			if m.Contains(atom.Key()) {
				schedule = append(schedule, Injection{Key: key, AtStep: t})
			}
		}
	}
	return schedule, true, nil
}
