package hierarchy

import (
	"strings"
	"testing"

	"cpsrisk/internal/plant"
	"cpsrisk/internal/sysmodel"
	"cpsrisk/internal/watertank"
)

func TestFocusForMatrix(t *testing.T) {
	tests := []struct {
		asset  AssetLevel
		threat ThreatLevel
		want   Focus
	}{
		{AssetAbstract, ThreatAspects, TopologyPropagation},
		{AssetAbstract, ThreatFaults, DetailedPropagation},
		{AssetAbstract, ThreatMitigations, MitigationPlan},
		{AssetRefined, ThreatAspects, DetailedPropagation},
		{AssetRefined, ThreatFaults, DetailedPropagation},
		{AssetRefined, ThreatMitigations, MitigationPlan},
	}
	for _, tt := range tests {
		if got := FocusFor(tt.asset, tt.threat); got != tt.want {
			t.Errorf("FocusFor(%v,%v) = %v, want %v", tt.asset, tt.threat, got, tt.want)
		}
	}
}

func TestMatrixComplete(t *testing.T) {
	cells := Matrix()
	if len(cells) != 6 {
		t.Fatalf("matrix cells = %d", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		key := c.Asset.String() + "/" + c.Threat.String()
		if seen[key] {
			t.Fatalf("duplicate cell %s", key)
		}
		seen[key] = true
		if c.Focus != FocusFor(c.Asset, c.Threat) {
			t.Errorf("cell %s focus mismatch", key)
		}
	}
}

func TestTopologyOnCaseStudy(t *testing.T) {
	m := watertank.Model()
	tank, _ := m.Component(plant.CompTank)
	tank.SetAttr(CriticalityAttr, "VH")
	hmi, _ := m.Component(plant.CompHMI)
	hmi.SetAttr(CriticalityAttr, "H")

	results, err := Topology(m, []string{plant.CompEWS, plant.CompHMI})
	if err != nil {
		t.Fatal(err)
	}
	// The workstation reaches the tank through the control chain: a
	// preliminary hazard even without behaviour knowledge.
	ews := results[0]
	if ews.Seed != plant.CompEWS {
		t.Fatalf("order broken: %+v", ews)
	}
	found := false
	for _, c := range ews.Critical {
		if c == plant.CompTank {
			found = true
		}
	}
	if !found {
		t.Errorf("ews topology must reach the tank: %+v", ews)
	}
	// The HMI is a sink: it reaches only itself.
	hmiRes := results[1]
	if len(hmiRes.Affected) != 1 || hmiRes.Affected[0] != plant.CompHMI {
		t.Errorf("hmi reach = %v", hmiRes.Affected)
	}
}

func TestTopologyUnknownSeed(t *testing.T) {
	m := watertank.Model()
	if _, err := Topology(m, []string{"ghost"}); err == nil {
		t.Error("unknown seed must fail")
	}
}

func TestRefinementPlan(t *testing.T) {
	m := watertank.HierarchicalModel()
	tank, _ := m.Component(plant.CompTank)
	tank.SetAttr(CriticalityAttr, "VH")
	topo, err := Topology(m, []string{plant.CompEWS, plant.CompHMI})
	if err != nil {
		t.Fatal(err)
	}
	plan := RefinementPlan(m, topo)
	if len(plan) != 1 || plan[0] != plant.CompEWS {
		t.Fatalf("refinement plan = %v", plan)
	}
	// Non-composite hot seeds are not refinable.
	flat := watertank.Model()
	tank2, _ := flat.Component(plant.CompTank)
	tank2.SetAttr(CriticalityAttr, "VH")
	topo2, err := Topology(flat, []string{plant.CompEWS})
	if err != nil {
		t.Fatal(err)
	}
	if got := RefinementPlan(flat, topo2); len(got) != 0 {
		t.Errorf("flat plan = %v", got)
	}
}

// The §VI iteration: abstract topology finds the hot composite, refining
// it yields a strictly more detailed model on which detailed analysis
// still works (validated in the watertank package).
func TestIterativeRefinementWorkflow(t *testing.T) {
	m := watertank.HierarchicalModel()
	tank, _ := m.Component(plant.CompTank)
	tank.SetAttr(CriticalityAttr, "VH")
	topo, err := Topology(m, []string{plant.CompEWS})
	if err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	for _, id := range RefinementPlan(m, topo) {
		if err := m.RefineComponent(id); err != nil {
			t.Fatal(err)
		}
	}
	after := m.Stats()
	// Refinement dissolves the composite shell: one fewer component in
	// total (the shell), zero composites, zero depth.
	if after.Composites != 0 || after.Depth != 0 || after.Components != before.Components-1 {
		t.Errorf("refinement stats: before=%+v after=%+v", before, after)
	}
	if err := m.Validate(watertank.Types()); err != nil {
		t.Fatalf("refined model invalid: %v", err)
	}
	// The refined inner chain is now visible to topology analysis.
	topo2, err := Topology(m, []string{"ews.email_client"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(topo2[0].Affected, ","), plant.CompTank) {
		t.Errorf("inner seed must reach the tank: %v", topo2[0].Affected)
	}
}

func TestStringers(t *testing.T) {
	if AssetAbstract.String() == AssetRefined.String() {
		t.Error("asset level strings collide")
	}
	if ThreatAspects.String() == "" || TopologyPropagation.String() == "" {
		t.Error("empty stringer")
	}
	_ = sysmodel.SignalFlow
}

func TestRenderMatrix(t *testing.T) {
	out := RenderMatrix()
	for _, want := range []string{"abstract-assets", "refined-assets",
		"topology-based-propagation", "mitigation-plan"} {
		if !strings.Contains(out, want) {
			t.Errorf("matrix missing %q:\n%s", want, out)
		}
	}
}
