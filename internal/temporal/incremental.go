package temporal

import (
	"fmt"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/logic"
	"cpsrisk/internal/obs"
	"cpsrisk/internal/solver"
)

// Incremental is the multi-shot counterpart of Unroller: it compiles LTLf
// formulas into a horizon-INDEPENDENT encoding, holds one persistent
// solver session over it, and extends the horizon by streaming only the
// new time steps into the session — the clingo "#program step(t)" pattern.
//
// Where Unroller bakes Horizon-1 into the rules for W/G/R (so growing the
// bound means recompiling and re-grounding everything), Incremental
// marks the end of the trace with a chosen tl_last(T) atom and guards the
// fixpoint rules with the derived in-trace predicate:
//
//	{ tl_last(T) } :- time(T).
//	:- tl_last(T), tl_in(T+1), time(T).
//	tl_in(T) :- tl_last(T).
//	tl_in(T) :- tl_in(T+1), time(T).
//
// Each query pins tl_last to one step by assumption, so a single
// grounding answers queries at ANY horizon up to the current bound, and
// Extend(k) adds only k new time facts. The extension re-instantiates
// recursive rules over the new frontier (new supports for old atoms land
// on the session's rebuild path, which keeps branching activities and
// phases but drops learned clauses); the amortized win is the grounding
// and translation reuse, not clause retention across extensions.
//
// Like solver.Session, an Incremental is strictly single-goroutine.
type Incremental struct {
	// PropMap maps propositions to timed atoms (default DefaultPropMap).
	// Set it before the first Compile.
	PropMap PropMapper

	horizon int
	counter int
	memo    map[string]string
	pending *logic.Program
	sess    *solver.Session
	err     error
}

// scaffold is the horizon-independent trace skeleton. The step-domain
// predicate is fixed to "time"; tl_last and tl_in are reserved. The
// middle constraint enforces at most one trace end in O(h) ground
// instances: a second, earlier end T1 < T2 sees tl_in(T1+1) through the
// downward closure from T2 and is rejected.
const scaffold = `
	{ tl_last(T) } :- time(T).
	:- tl_last(T), tl_in(T+1), time(T).
	tl_in(T) :- tl_last(T).
	tl_in(T) :- tl_in(T+1), time(T).
`

// NewIncremental builds an incremental unroller with time steps
// 0..horizon-1 (horizon >= 1).
func NewIncremental(horizon int) (*Incremental, error) {
	if horizon < 1 {
		return nil, fmt.Errorf("temporal: horizon %d < 1", horizon)
	}
	pending, err := logic.Parse(scaffold)
	if err != nil {
		return nil, err
	}
	pending.AddFact(logic.A("time", logic.Interval{Lo: logic.Num(0), Hi: logic.Num(horizon - 1)}))
	return &Incremental{
		PropMap: DefaultPropMap,
		horizon: horizon,
		memo:    map[string]string{},
		pending: pending,
	}, nil
}

// Horizon returns the current bound (number of trace states).
func (inc *Incremental) Horizon() int { return inc.horizon }

// Close releases the underlying session, if one was started.
func (inc *Incremental) Close() {
	if inc.sess != nil {
		inc.sess.Close()
		inc.sess = nil
	}
}

// Add merges caller rules and facts (e.g. trace facts, system dynamics)
// into the encoding. Before the first Solve they join the base grounding;
// afterwards they are streamed into the live session.
func (inc *Incremental) Add(prog *logic.Program) error {
	if inc.err != nil {
		return inc.err
	}
	inc.pending.Extend(prog)
	return nil
}

// Extend grows the horizon by k steps, adding only the new time facts.
func (inc *Incremental) Extend(k int) error {
	if inc.err != nil {
		return inc.err
	}
	if k < 1 {
		return fmt.Errorf("temporal: extend by %d < 1", k)
	}
	inc.pending.AddFact(logic.A("time",
		logic.Interval{Lo: logic.Num(inc.horizon), Hi: logic.Num(inc.horizon + k - 1)}))
	inc.horizon += k
	return nil
}

// Assumptions returns the assumption set pinning the trace end to state
// h-1 (h defaults to the current horizon when <= 0), for combining with
// caller assumptions in Solve.
func (inc *Incremental) Assumptions(h int) []solver.Assumption {
	if h <= 0 {
		h = inc.horizon
	}
	// The scaffold's at-most-one constraint makes the single positive
	// assumption pin tl_last exactly.
	return []solver.Assumption{solver.AssumeTrue(fmt.Sprintf("tl_last(%d)", h-1))}
}

// Compile adds rules defining pred(T) <-> "f holds at state T of the
// trace ending at the pinned tl_last" and returns the predicate name.
func (inc *Incremental) Compile(f Formula) (string, error) {
	if inc.err != nil {
		return "", inc.err
	}
	return inc.compile(f)
}

// Solve answers one query at horizon h (<= the current bound; <= 0 means
// the current bound): any pending compile output, trace facts, and time
// extensions are flushed into the session first, then the query runs
// under the trace-end assumptions plus the extras.
func (inc *Incremental) Solve(h int, extra []solver.Assumption, opts solver.Options) (*solver.Result, error) {
	if inc.err != nil {
		return nil, inc.err
	}
	if h <= 0 {
		h = inc.horizon
	}
	if h > inc.horizon {
		return nil, fmt.Errorf("temporal: query horizon %d beyond bound %d", h, inc.horizon)
	}
	// When the budget carries a trace, group this query's session spans
	// (flush grounding + solve) under one tl-solve span at the queried
	// horizon. Untraced callers pay a single nil check.
	if parent := obs.SpanFromContext(opts.Budget.Context()); parent != nil {
		sp := parent.StartChild(fmt.Sprintf("tl-solve@h=%d", h))
		defer sp.End()
		opts.Budget = budget.New(obs.ContextWithSpan(opts.Budget.Context(), sp), opts.Budget.Limits())
	}
	if err := inc.flush(opts); err != nil {
		return nil, err
	}
	return inc.sess.SolveAssuming(append(inc.Assumptions(h), extra...), opts)
}

// Stats returns the session's cumulative solver effort (zero before the
// first Solve).
func (inc *Incremental) Stats() solver.Stats {
	if inc.sess == nil {
		return solver.Stats{}
	}
	return inc.sess.Stats()
}

func (inc *Incremental) flush(opts solver.Options) error {
	if inc.sess == nil {
		sess, err := solver.NewSession(inc.pending, solver.Options{Budget: opts.Budget})
		if err != nil {
			inc.err = err
			return err
		}
		inc.sess = sess
		inc.pending = &logic.Program{}
		return nil
	}
	if len(inc.pending.Rules) == 0 {
		return nil
	}
	if err := inc.sess.Add(inc.pending); err != nil {
		inc.err = err
		return err
	}
	inc.pending = &logic.Program{}
	return nil
}

func (inc *Incremental) fresh() string {
	inc.counter++
	return fmt.Sprintf("tl%d", inc.counter)
}

func (inc *Incremental) timeLit() logic.BodyElem {
	return logic.Pos(logic.A("time", varT))
}

func (inc *Incremental) inTrace(t logic.Term) logic.BodyElem {
	return logic.Pos(logic.A("tl_in", t))
}

func (inc *Incremental) lastLit() logic.BodyElem {
	return logic.Pos(logic.A("tl_last", varT))
}

// compile mirrors Unroller.compile with the horizon-dependence replaced
// by tl_last/tl_in guards. Invariant: every compiled predicate is only
// derivable inside the pinned trace (p(T) implies tl_in(T)), so positive
// subformula literals need no extra guard, while rules whose body is
// negative or empty re-assert the guard explicitly.
func (inc *Incremental) compile(f Formula) (string, error) {
	key := f.String()
	if p, ok := inc.memo[key]; ok {
		return p, nil
	}
	p := inc.fresh()
	inc.memo[key] = p
	prog := inc.pending
	at := func(pred string, t logic.Term) logic.Atom { return logic.A(pred, t) }

	switch ff := f.(type) {
	case TrueF:
		prog.AddRule(logic.NormalRule(at(p, varT), inc.inTrace(varT)))
	case FalseF:
		// No rules: never derivable.
	case Prop:
		timed := inc.PropMap(ff.Atom, varT)
		prog.AddRule(logic.NormalRule(at(p, varT), inc.inTrace(varT), logic.Pos(timed)))
	case NotF:
		s, err := inc.compile(ff.Sub)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(at(p, varT), inc.inTrace(varT), logic.Not(at(s, varT))))
	case NextF:
		s, err := inc.compile(ff.Sub)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(at(p, varT), inc.timeLit(), logic.Pos(at(s, tPlus1()))))
	case WeakNextF:
		s, err := inc.compile(ff.Sub)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(at(p, varT), inc.timeLit(), logic.Pos(at(s, tPlus1()))))
		prog.AddRule(logic.NormalRule(at(p, varT), inc.lastLit()))
	case FinallyF:
		s, err := inc.compile(ff.Sub)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(at(p, varT), logic.Pos(at(s, varT))))
		prog.AddRule(logic.NormalRule(at(p, varT), inc.timeLit(), logic.Pos(at(p, tPlus1()))))
	case GloballyF:
		s, err := inc.compile(ff.Sub)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(at(p, varT), inc.lastLit(), logic.Pos(at(s, varT))))
		prog.AddRule(logic.NormalRule(at(p, varT),
			logic.Pos(at(s, varT)), logic.Pos(at(p, tPlus1()))))
	case AndF:
		l, err := inc.compile(ff.L)
		if err != nil {
			return "", err
		}
		r, err := inc.compile(ff.R)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(at(p, varT),
			logic.Pos(at(l, varT)), logic.Pos(at(r, varT))))
	case OrF:
		l, err := inc.compile(ff.L)
		if err != nil {
			return "", err
		}
		r, err := inc.compile(ff.R)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(at(p, varT), logic.Pos(at(l, varT))))
		prog.AddRule(logic.NormalRule(at(p, varT), logic.Pos(at(r, varT))))
	case ImpliesF:
		l, err := inc.compile(ff.L)
		if err != nil {
			return "", err
		}
		r, err := inc.compile(ff.R)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(at(p, varT), inc.inTrace(varT), logic.Not(at(l, varT))))
		prog.AddRule(logic.NormalRule(at(p, varT), logic.Pos(at(r, varT))))
	case UntilF:
		l, err := inc.compile(ff.L)
		if err != nil {
			return "", err
		}
		r, err := inc.compile(ff.R)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(at(p, varT), logic.Pos(at(r, varT))))
		prog.AddRule(logic.NormalRule(at(p, varT),
			logic.Pos(at(l, varT)), logic.Pos(at(p, tPlus1()))))
	case ReleaseF:
		l, err := inc.compile(ff.L)
		if err != nil {
			return "", err
		}
		r, err := inc.compile(ff.R)
		if err != nil {
			return "", err
		}
		prog.AddRule(logic.NormalRule(at(p, varT), inc.lastLit(), logic.Pos(at(r, varT))))
		prog.AddRule(logic.NormalRule(at(p, varT),
			logic.Pos(at(r, varT)), logic.Pos(at(l, varT))))
		prog.AddRule(logic.NormalRule(at(p, varT),
			logic.Pos(at(r, varT)), logic.Pos(at(p, tPlus1()))))
	default:
		return "", fmt.Errorf("temporal: cannot compile %T", f)
	}
	return p, nil
}
