package logic

import (
	"fmt"
)

// Parse parses a program in the clingo-like surface syntax:
//
//	component(tank).                                % fact
//	level(tank, 0..4).                              % interval fact
//	state(C, err) :- fault(C), not mitigated(C).    % normal rule
//	:- overflow, not alerted.                       % integrity constraint
//	{ active(F) : candidate(F) }.                   % choice rule
//	1 { color(N,C) : col(C) } 1 :- node(N).         % bounded choice
//	cost(C1) :- cost0(C), C1 = C + 10.              % arithmetic assignment
//	#minimize { W@1,F : active(F), weight(F,W) }.   % optimization
//	:~ active(F), weight(F,W). [W@1, F]             % weak constraint
//
// Directives other than #minimize are accepted and ignored (#show, #const
// is not supported and reports an error to avoid silent misbehaviour).
func Parse(src string) (*Program, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	prog := &Program{}
	for p.tok.kind != tokEOF {
		if err := p.parseStatement(prog); err != nil {
			return nil, err
		}
	}
	if err := prog.CheckSafety(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse panics on parse errors; for tests and static encodings.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Line: p.tok.line, Message: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind tokenKind, what string) error {
	if p.tok.kind != kind {
		return p.errorf("expected %s, got %q", what, p.tok.text)
	}
	return p.advance()
}

func (p *parser) parseStatement(prog *Program) error {
	switch p.tok.kind {
	case tokDirective:
		return p.parseDirective(prog)
	case tokWeakIf:
		return p.parseWeakConstraint(prog)
	default:
		return p.parseRule(prog)
	}
}

func (p *parser) parseDirective(prog *Program) error {
	name := p.tok.text
	switch name {
	case "#minimize", "#maximize":
		maximize := name == "#maximize"
		if err := p.advance(); err != nil {
			return err
		}
		if err := p.expect(tokLBrace, "{"); err != nil {
			return err
		}
		for {
			elem, err := p.parseMinimizeElem(maximize)
			if err != nil {
				return err
			}
			prog.AddMinimize(elem)
			if p.tok.kind != tokSemicolon {
				break
			}
			if err := p.advance(); err != nil {
				return err
			}
		}
		if err := p.expect(tokRBrace, "}"); err != nil {
			return err
		}
		return p.expect(tokDot, ".")
	case "#show":
		// Accepted and ignored: everything is shown.
		for p.tok.kind != tokDot && p.tok.kind != tokEOF {
			if err := p.advance(); err != nil {
				return err
			}
		}
		return p.expect(tokDot, ".")
	default:
		return p.errorf("unsupported directive %s", name)
	}
}

// parseMinimizeElem parses "Weight[@Prio][,Tuple...] : cond,...".
func (p *parser) parseMinimizeElem(maximize bool) (MinimizeElem, error) {
	w, err := p.parseTerm()
	if err != nil {
		return MinimizeElem{}, err
	}
	if maximize {
		w = BinOp{Op: OpSub, Left: Num(0), Right: w}
	}
	elem := MinimizeElem{Weight: w}
	if p.tok.kind == tokAt {
		if err := p.advance(); err != nil {
			return MinimizeElem{}, err
		}
		if p.tok.kind != tokNumber {
			return MinimizeElem{}, p.errorf("expected priority number after @")
		}
		elem.Priority = p.tok.num
		if err := p.advance(); err != nil {
			return MinimizeElem{}, err
		}
	}
	for p.tok.kind == tokComma {
		if err := p.advance(); err != nil {
			return MinimizeElem{}, err
		}
		t, err := p.parseTerm()
		if err != nil {
			return MinimizeElem{}, err
		}
		elem.Tuple = append(elem.Tuple, t)
	}
	if p.tok.kind == tokColon {
		if err := p.advance(); err != nil {
			return MinimizeElem{}, err
		}
		body, err := p.parseBody()
		if err != nil {
			return MinimizeElem{}, err
		}
		elem.Cond = body
	}
	return elem, nil
}

// parseWeakConstraint parses ":~ body. [Weight@Prio, Tuple...]" as sugar for
// a #minimize element.
func (p *parser) parseWeakConstraint(prog *Program) error {
	if err := p.advance(); err != nil { // consume :~
		return err
	}
	body, err := p.parseBody()
	if err != nil {
		return err
	}
	if err := p.expect(tokDot, "."); err != nil {
		return err
	}
	if err := p.expect(tokLBracket, "["); err != nil {
		return err
	}
	w, err := p.parseTerm()
	if err != nil {
		return err
	}
	elem := MinimizeElem{Weight: w, Cond: body}
	if p.tok.kind == tokAt {
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind != tokNumber {
			return p.errorf("expected priority number after @")
		}
		elem.Priority = p.tok.num
		if err := p.advance(); err != nil {
			return err
		}
	}
	for p.tok.kind == tokComma {
		if err := p.advance(); err != nil {
			return err
		}
		t, err := p.parseTerm()
		if err != nil {
			return err
		}
		elem.Tuple = append(elem.Tuple, t)
	}
	if err := p.expect(tokRBracket, "]"); err != nil {
		return err
	}
	prog.AddMinimize(elem)
	return nil
}

func (p *parser) parseRule(prog *Program) error {
	var rule Rule
	switch p.tok.kind {
	case tokIf:
		// Integrity constraint: :- body.
	case tokLBrace, tokNumber:
		// Possible choice head (a bare number can only start a choice bound
		// here since rule heads are atoms).
		choice, err := p.parseChoiceHead()
		if err != nil {
			return err
		}
		rule = choice
	default:
		head, err := p.parseAtom()
		if err != nil {
			return err
		}
		rule.Head = &head
	}
	if p.tok.kind == tokIf {
		if err := p.advance(); err != nil {
			return err
		}
		body, err := p.parseBody()
		if err != nil {
			return err
		}
		rule.Body = body
	}
	if err := p.expect(tokDot, "."); err != nil {
		return err
	}
	prog.AddRule(rule)
	return nil
}

func (p *parser) parseChoiceHead() (Rule, error) {
	rule := Rule{Choice: true, Lower: Unbounded, Upper: Unbounded}
	if p.tok.kind == tokNumber {
		rule.Lower = p.tok.num
		if err := p.advance(); err != nil {
			return Rule{}, err
		}
	}
	if err := p.expect(tokLBrace, "{"); err != nil {
		return Rule{}, err
	}
	for {
		atom, err := p.parseAtom()
		if err != nil {
			return Rule{}, err
		}
		elem := ChoiceElem{Atom: atom}
		if p.tok.kind == tokColon {
			if err := p.advance(); err != nil {
				return Rule{}, err
			}
			for {
				lit, err := p.parseLiteral()
				if err != nil {
					return Rule{}, err
				}
				elem.Cond = append(elem.Cond, lit)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return Rule{}, err
				}
			}
		}
		rule.Elems = append(rule.Elems, elem)
		if p.tok.kind != tokSemicolon {
			break
		}
		if err := p.advance(); err != nil {
			return Rule{}, err
		}
	}
	if err := p.expect(tokRBrace, "}"); err != nil {
		return Rule{}, err
	}
	if p.tok.kind == tokNumber {
		rule.Upper = p.tok.num
		if err := p.advance(); err != nil {
			return Rule{}, err
		}
	}
	return rule, nil
}

func (p *parser) parseBody() ([]BodyElem, error) {
	var body []BodyElem
	for {
		elem, err := p.parseBodyElem()
		if err != nil {
			return nil, err
		}
		body = append(body, elem)
		if p.tok.kind != tokComma {
			return body, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) parseBodyElem() (BodyElem, error) {
	if p.tok.kind == tokNot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		atom, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return Not(atom), nil
	}
	// Could be an atom or a comparison starting with a term. Parse a term
	// first; if a comparison operator follows, build a Comparison, else the
	// term must be usable as an atom.
	t, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if op, ok := comparisonOp(p.tok.kind); ok {
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		return Comparison{Op: op, Left: t, Right: rhs}, nil
	}
	atom, err := termToAtom(t)
	if err != nil {
		return nil, p.errorf("%v", err)
	}
	return Pos(atom), nil
}

func (p *parser) parseLiteral() (Literal, error) {
	neg := false
	if p.tok.kind == tokNot {
		neg = true
		if err := p.advance(); err != nil {
			return Literal{}, err
		}
	}
	atom, err := p.parseAtom()
	if err != nil {
		return Literal{}, err
	}
	return Literal{Atom: atom, Negated: neg}, nil
}

func comparisonOp(k tokenKind) (CompareOp, bool) {
	switch k {
	case tokEq:
		return CmpEq, true
	case tokNeq:
		return CmpNeq, true
	case tokLt:
		return CmpLt, true
	case tokLeq:
		return CmpLeq, true
	case tokGt:
		return CmpGt, true
	case tokGeq:
		return CmpGeq, true
	default:
		return 0, false
	}
}

func termToAtom(t Term) (Atom, error) {
	switch tt := t.(type) {
	case Symbol:
		return Atom{Pred: tt.Name}, nil
	case Compound:
		return Atom{Pred: tt.Functor, Args: tt.Args}, nil
	default:
		return Atom{}, fmt.Errorf("logic: %s cannot be used as an atom", t)
	}
}

func (p *parser) parseAtom() (Atom, error) {
	if p.tok.kind != tokIdent {
		return Atom{}, p.errorf("expected predicate name, got %q", p.tok.text)
	}
	name := p.tok.text
	if err := p.advance(); err != nil {
		return Atom{}, err
	}
	if p.tok.kind != tokLParen {
		return Atom{Pred: name}, nil
	}
	if err := p.advance(); err != nil {
		return Atom{}, err
	}
	var args []Term
	for {
		t, err := p.parseTerm()
		if err != nil {
			return Atom{}, err
		}
		args = append(args, t)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return Atom{}, err
		}
	}
	if err := p.expect(tokRParen, ")"); err != nil {
		return Atom{}, err
	}
	return Atom{Pred: name, Args: args}, nil
}

// Term grammar with precedence: addExpr := mulExpr (('+'|'-') mulExpr)*;
// mulExpr := primary (('*'|'/'|'\') primary)*; plus ".." intervals at the
// loosest level.
func (p *parser) parseTerm() (Term, error) {
	t, err := p.parseAddExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokDotDot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		hi, err := p.parseAddExpr()
		if err != nil {
			return nil, err
		}
		return Interval{Lo: t, Hi: hi}, nil
	}
	return t, nil
}

func (p *parser) parseAddExpr() (Term, error) {
	left, err := p.parseMulExpr()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPlus || p.tok.kind == tokMinus {
		op := OpAdd
		if p.tok.kind == tokMinus {
			op = OpSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseMulExpr()
		if err != nil {
			return nil, err
		}
		left = BinOp{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMulExpr() (Term, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokStar || p.tok.kind == tokSlash || p.tok.kind == tokBackslash {
		var op ArithOp
		switch p.tok.kind {
		case tokStar:
			op = OpMul
		case tokSlash:
			op = OpDiv
		default:
			op = OpMod
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = BinOp{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parsePrimary() (Term, error) {
	switch p.tok.kind {
	case tokNumber:
		n := p.tok.num
		if err := p.advance(); err != nil {
			return nil, err
		}
		return Num(n), nil
	case tokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if n, ok := t.(Number); ok {
			return Num(-n.Value), nil
		}
		return BinOp{Op: OpSub, Left: Num(0), Right: t}, nil
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return Sym(s), nil
	case tokVariable:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return Var(name), nil
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return Sym(name), nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		var args []Term
		for {
			t, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			args = append(args, t)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return Compound{Functor: name, Args: args}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return t, nil
	default:
		return nil, p.errorf("expected term, got %q", p.tok.text)
	}
}
