// Package logic implements the data model and surface syntax of the
// framework's embedded formal method: an Answer Set Programming (ASP)
// language in the fragment the paper's listings use (facts, normal rules
// with default negation, integrity constraints, choice rules with
// cardinality bounds, comparisons with arithmetic, and #minimize /
// weak-constraint optimization). It is the substitute for clingo's input
// language; stable-model computation lives in package solver.
package logic

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Term is a first-order term: a symbolic constant, an integer, a variable,
// a compound term f(t1,...,tn), an integer interval lo..hi (facts only), or
// an arithmetic expression.
type Term interface {
	fmt.Stringer
	// Ground reports whether the term contains no variables.
	Ground() bool
	// Vars appends the variables occurring in the term to dst.
	Vars(dst []string) []string
	// Substitute applies a binding; unbound variables remain.
	Substitute(b Bindings) Term
	isTerm()
}

// Bindings maps variable names to ground terms.
type Bindings map[string]Term

// Clone copies the bindings.
func (b Bindings) Clone() Bindings {
	out := make(Bindings, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Symbol is a symbolic constant (lowercase identifier or quoted string).
type Symbol struct{ Name string }

// Number is an integer constant.
type Number struct{ Value int }

// Variable is a logic variable (identifier starting with uppercase or _).
type Variable struct{ Name string }

// Compound is a function term f(t1,...,tn) with n >= 1.
type Compound struct {
	Functor string
	Args    []Term
}

// Interval is an inclusive integer range lo..hi, allowed only in fact
// arguments where it expands to one fact per member.
type Interval struct{ Lo, Hi Term }

// ArithOp is an arithmetic operator for expression terms.
type ArithOp int

// Arithmetic operators.
const (
	OpAdd ArithOp = iota + 1
	OpSub
	OpMul
	OpDiv
	OpMod
)

// String implements fmt.Stringer.
func (o ArithOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "\\"
	default:
		return "?op"
	}
}

// BinOp is an arithmetic expression term; it must evaluate to an integer
// once its operands are ground.
type BinOp struct {
	Op          ArithOp
	Left, Right Term
}

func (Symbol) isTerm()   {}
func (Number) isTerm()   {}
func (Variable) isTerm() {}
func (Compound) isTerm() {}
func (Interval) isTerm() {}
func (BinOp) isTerm()    {}

// Ground implementations.

// Ground reports whether the term contains no variables.
func (Symbol) Ground() bool { return true }

// Ground reports whether the term contains no variables.
func (Number) Ground() bool { return true }

// Ground reports whether the term contains no variables.
func (Variable) Ground() bool { return false }

// Ground reports whether the term contains no variables.
func (c Compound) Ground() bool {
	for _, a := range c.Args {
		if !a.Ground() {
			return false
		}
	}
	return true
}

// Ground reports whether the term contains no variables.
func (i Interval) Ground() bool { return i.Lo.Ground() && i.Hi.Ground() }

// Ground reports whether the term contains no variables.
func (b BinOp) Ground() bool { return b.Left.Ground() && b.Right.Ground() }

// Vars implementations.

// Vars appends variables to dst.
func (Symbol) Vars(dst []string) []string { return dst }

// Vars appends variables to dst.
func (Number) Vars(dst []string) []string { return dst }

// Vars appends variables to dst.
func (v Variable) Vars(dst []string) []string { return append(dst, v.Name) }

// Vars appends variables to dst.
func (c Compound) Vars(dst []string) []string {
	for _, a := range c.Args {
		dst = a.Vars(dst)
	}
	return dst
}

// Vars appends variables to dst.
func (i Interval) Vars(dst []string) []string { return i.Hi.Vars(i.Lo.Vars(dst)) }

// Vars appends variables to dst.
func (b BinOp) Vars(dst []string) []string { return b.Right.Vars(b.Left.Vars(dst)) }

// Substitute implementations.

// Substitute applies a binding.
func (s Symbol) Substitute(Bindings) Term { return s }

// Substitute applies a binding.
func (n Number) Substitute(Bindings) Term { return n }

// Substitute applies a binding.
func (v Variable) Substitute(b Bindings) Term {
	if t, ok := b[v.Name]; ok {
		return t
	}
	return v
}

// Substitute applies a binding.
func (c Compound) Substitute(b Bindings) Term {
	args := make([]Term, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.Substitute(b)
	}
	return Compound{Functor: c.Functor, Args: args}
}

// Substitute applies a binding.
func (i Interval) Substitute(b Bindings) Term {
	return Interval{Lo: i.Lo.Substitute(b), Hi: i.Hi.Substitute(b)}
}

// Substitute applies a binding.
func (op BinOp) Substitute(b Bindings) Term {
	return BinOp{Op: op.Op, Left: op.Left.Substitute(b), Right: op.Right.Substitute(b)}
}

// String implementations.

// String implements fmt.Stringer.
func (s Symbol) String() string {
	if needsQuotes(s.Name) {
		return quoteSymbol(s.Name)
	}
	return s.Name
}

// quoteSymbol quotes a symbol using exactly the escapes the lexer decodes
// (backslash, quote, newline, tab); all other bytes pass through raw so
// rendering and parsing are mutual inverses.
func quoteSymbol(name string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(name); i++ {
		switch c := name[i]; c {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func needsQuotes(name string) bool {
	if name == "" {
		return true
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			if i == 0 && (r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
				return true
			}
		default:
			return true
		}
	}
	return false
}

// String implements fmt.Stringer.
func (n Number) String() string { return strconv.Itoa(n.Value) }

// String implements fmt.Stringer.
func (v Variable) String() string { return v.Name }

// String implements fmt.Stringer.
func (c Compound) String() string {
	var sb strings.Builder
	sb.WriteString(c.Functor)
	sb.WriteByte('(')
	for i, a := range c.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(a.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// String implements fmt.Stringer.
func (i Interval) String() string { return i.Lo.String() + ".." + i.Hi.String() }

// String implements fmt.Stringer.
func (b BinOp) String() string {
	return "(" + b.Left.String() + b.Op.String() + b.Right.String() + ")"
}

// Sym is a convenience constructor for Symbol.
func Sym(name string) Symbol { return Symbol{Name: name} }

// Num is a convenience constructor for Number.
func Num(v int) Number { return Number{Value: v} }

// Var is a convenience constructor for Variable.
func Var(name string) Variable { return Variable{Name: name} }

// Func is a convenience constructor for Compound.
func Func(functor string, args ...Term) Compound {
	return Compound{Functor: functor, Args: args}
}

// Eval evaluates a ground term to a fully evaluated term: arithmetic
// sub-expressions are reduced to Numbers. It fails on unbound variables,
// intervals, non-integer arithmetic operands, and division by zero.
func Eval(t Term) (Term, error) {
	switch tt := t.(type) {
	case Symbol, Number:
		return t, nil
	case Variable:
		return nil, fmt.Errorf("logic: unbound variable %s in evaluation", tt.Name)
	case Compound:
		args := make([]Term, len(tt.Args))
		for i, a := range tt.Args {
			ea, err := Eval(a)
			if err != nil {
				return nil, err
			}
			args[i] = ea
		}
		return Compound{Functor: tt.Functor, Args: args}, nil
	case Interval:
		return nil, fmt.Errorf("logic: interval %s outside fact position", tt)
	case BinOp:
		l, err := EvalInt(tt.Left)
		if err != nil {
			return nil, err
		}
		r, err := EvalInt(tt.Right)
		if err != nil {
			return nil, err
		}
		switch tt.Op {
		case OpAdd:
			return Number{Value: l + r}, nil
		case OpSub:
			return Number{Value: l - r}, nil
		case OpMul:
			return Number{Value: l * r}, nil
		case OpDiv:
			if r == 0 {
				return nil, fmt.Errorf("logic: division by zero in %s", tt)
			}
			return Number{Value: l / r}, nil
		case OpMod:
			if r == 0 {
				return nil, fmt.Errorf("logic: modulo by zero in %s", tt)
			}
			return Number{Value: l % r}, nil
		default:
			return nil, fmt.Errorf("logic: unknown operator in %s", tt)
		}
	default:
		return nil, fmt.Errorf("logic: unknown term type %T", t)
	}
}

// EvalInt evaluates a ground term that must reduce to an integer.
func EvalInt(t Term) (int, error) {
	e, err := Eval(t)
	if err != nil {
		return 0, err
	}
	n, ok := e.(Number)
	if !ok {
		return 0, fmt.Errorf("logic: term %s is not an integer", e)
	}
	return n.Value, nil
}

// Compare defines a total order over evaluated ground terms:
// numbers < symbols < compounds; numbers by value, symbols by name,
// compounds by functor, then arity, then args. Used for deterministic
// output ordering and term equality in answer sets.
func Compare(a, b Term) int {
	ra, rb := termRank(a), termRank(b)
	if ra != rb {
		return ra - rb
	}
	switch ta := a.(type) {
	case Number:
		tb, ok := b.(Number)
		if !ok {
			return -1
		}
		return ta.Value - tb.Value
	case Symbol:
		tb, ok := b.(Symbol)
		if !ok {
			return -1
		}
		return strings.Compare(ta.Name, tb.Name)
	case Compound:
		tb, ok := b.(Compound)
		if !ok {
			return -1
		}
		if c := strings.Compare(ta.Functor, tb.Functor); c != 0 {
			return c
		}
		if c := len(ta.Args) - len(tb.Args); c != 0 {
			return c
		}
		for i := range ta.Args {
			if c := Compare(ta.Args[i], tb.Args[i]); c != 0 {
				return c
			}
		}
		return 0
	default:
		// Non-evaluated terms compare by their textual form; stable if odd.
		return strings.Compare(a.String(), b.String())
	}
}

func termRank(t Term) int {
	switch t.(type) {
	case Number:
		return 0
	case Symbol:
		return 1
	case Compound:
		return 2
	default:
		return 3
	}
}

// SortTerms sorts terms by Compare.
func SortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return Compare(ts[i], ts[j]) < 0 })
}
