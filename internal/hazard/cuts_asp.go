package hazard

import (
	"fmt"
	"sort"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/logic"
	"cpsrisk/internal/solver"
)

// maxCutRoundsCap bounds the defensive round limit when the caller passes
// maxRounds <= 0: 2^n rounds is the natural ceiling for n mutation
// candidates, but the shift overflows for n >= 63, so large candidate
// sets clamp to a fixed cap instead.
const maxCutRoundsCap = 1 << 20

func defaultCutRounds(n int) int {
	if n >= 20 {
		return maxCutRoundsCap
	}
	return 1 << n
}

// MinimalCutsASP enumerates the minimal fault combinations violating one
// requirement through the embedded formal method: the EPA encoding plus
// the scenario choice, an integrity constraint demanding the violation,
// and cardinality `#minimize` over the activations. Each optimization
// round yields minimum-cardinality cuts; blocking each found cut (as a
// conjunction) and re-solving climbs the cardinality levels until no
// violating scenario remains, which enumerates exactly the minimal cuts —
// the qualitative analogue of FTA minimal cut sets computed by the
// reasoner itself (§III-A, §IV-D "the engine selects the active faults").
//
// The enumeration is multi-shot: one persistent solver session grounds
// the encoding once, each round re-queries it with retained learned
// clauses and heuristics, and every found cut lands as an incremental
// blocking constraint through the solver's backjump-then-add path.
//
// maxRounds bounds the iteration defensively; the space of minimal cuts
// over n candidates is finite, so the loop always terminates on its own.
func MinimalCutsASP(eng *epa.Engine, muts []faults.Mutation, req Requirement, maxRounds int) ([]epa.Scenario, error) {
	return MinimalCutsASPOpts(eng, muts, req, maxRounds, ASPOptions{})
}

// MinimalCutsASPOpts is MinimalCutsASP with a budget and solver portfolio
// control: with SolverWorkers > 1 every optimization round races that
// many diversified engines, sharing learned clauses and racing the
// cardinality bound. The enumerated cut set is identical for any worker
// count (each round's optimum and its complete optimal model set are
// unique); only wall-clock time changes.
func MinimalCutsASPOpts(eng *epa.Engine, muts []faults.Mutation, req Requirement, maxRounds int, o ASPOptions) ([]epa.Scenario, error) {
	base, err := cutsBase(eng, muts, req)
	if err != nil {
		return nil, err
	}
	if maxRounds <= 0 {
		maxRounds = defaultCutRounds(len(muts))
	}
	sess, err := solver.NewSession(base, solver.Options{
		Budget:        o.Budget,
		Workers:       o.SolverWorkers,
		Deterministic: o.Deterministic,
	})
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	var cuts []epa.Scenario
	for round := 0; round < maxRounds; round++ {
		res, err := sess.SolveAssuming(nil, solver.Options{Optimize: true})
		if err != nil {
			return nil, err
		}
		if len(res.Models) == 0 {
			return cuts, nil // space exhausted
		}
		batch := cutBatch(res.Models, muts)
		cuts = append(cuts, batch...)
		block := &logic.Program{}
		for _, cut := range batch {
			block.AddRule(blockCut(cut))
		}
		if err := sess.Add(block); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("hazard: minimal-cut enumeration exceeded %d rounds", maxRounds)
}

// MinimalCutsASPSingleShot is the pre-session reference implementation:
// every round rebuilds the program with all blocking constraints and
// re-grounds and re-solves it from scratch. It is exported for the
// differential equality test and the S4 incremental-vs-single-shot
// benchmark; production callers should use MinimalCutsASP.
func MinimalCutsASPSingleShot(eng *epa.Engine, muts []faults.Mutation, req Requirement, maxRounds int) ([]epa.Scenario, error) {
	base, err := cutsBase(eng, muts, req)
	if err != nil {
		return nil, err
	}
	if maxRounds <= 0 {
		maxRounds = defaultCutRounds(len(muts))
	}
	var cuts []epa.Scenario
	for round := 0; round < maxRounds; round++ {
		prog := &logic.Program{}
		prog.Extend(base)
		for _, cut := range cuts {
			prog.AddRule(blockCut(cut))
		}
		res, err := solver.SolveProgram(prog, solver.Options{Optimize: true})
		if err != nil {
			return nil, err
		}
		if len(res.Models) == 0 {
			return cuts, nil // space exhausted
		}
		cuts = append(cuts, cutBatch(res.Models, muts)...)
	}
	return nil, fmt.Errorf("hazard: minimal-cut enumeration exceeded %d rounds", maxRounds)
}

// cutsBase builds the shared encoding: EPA semantics, the unbounded fault
// choice, the violation condition, and the cardinality objective.
func cutsBase(eng *epa.Engine, muts []faults.Mutation, req Requirement) (*logic.Program, error) {
	if err := validateReqs([]Requirement{req}); err != nil {
		return nil, err
	}
	base, err := eng.EncodeASP()
	if err != nil {
		return nil, err
	}
	faults.EncodeChoice(base, muts, -1)
	if err := EncodeViolation(base, req.ID, req.Condition); err != nil {
		return nil, err
	}
	base.AddRule(logic.Constraint(logic.Not(logic.A("violated", logic.Sym(req.ID)))))
	base.AddMinimize(logic.MinimizeElem{
		Weight:   logic.Num(1),
		Priority: 1,
		Tuple:    []logic.Term{logic.Func("cut", logic.Var("C"), logic.Var("F"))},
		Cond: []logic.BodyElem{
			logic.Pos(logic.A("active", logic.Var("C"), logic.Var("F"))),
		},
	})
	return base, nil
}

// cutBatch extracts one round's cuts from its optimal models, sorted by
// scenario key so both enumeration strategies emit identical output.
// All optimal models of a round share the minimum cardinality: each is a
// minimal cut (no proper subset violates, or it would have been optimal
// in an earlier round or this one).
func cutBatch(models []solver.Model, muts []faults.Mutation) []epa.Scenario {
	batch := make([]epa.Scenario, 0, len(models))
	for _, m := range models {
		var cut epa.Scenario
		for _, mu := range muts {
			if m.Contains(epa.ActiveAtom(mu.Component, mu.Fault).Key()) {
				cut = append(cut, mu.Activation)
			}
		}
		batch = append(batch, cut)
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].Key() < batch[j].Key() })
	return batch
}

// blockCut forbids supersets of a found cut.
func blockCut(cut epa.Scenario) logic.Rule {
	body := make([]logic.BodyElem, 0, len(cut))
	for _, a := range cut {
		body = append(body, logic.Pos(epa.ActiveAtom(a.Component, a.Fault)))
	}
	return logic.Constraint(body...)
}
