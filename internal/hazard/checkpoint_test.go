package hazard

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/store"
	"cpsrisk/internal/sysmodel"
)

// setupWide builds a propagation chain c0 -> c1 -> ... -> c<n-1> where
// every node can corrupt and errors flow downstream, giving a 2^n
// scenario space — big enough for the crash matrix to interrupt sweeps
// mid-flight at interesting points.
func setupWide(t testing.TB, n int) (*epa.Engine, []faults.Mutation, []Requirement) {
	t.Helper()
	types := sysmodel.NewTypeLibrary()
	types.MustAdd(&sysmodel.ComponentType{
		Name: "node",
		Ports: []sysmodel.PortSpec{
			{Name: "in", Dir: sysmodel.In, Flow: sysmodel.SignalFlow},
			{Name: "out", Dir: sysmodel.Out, Flow: sysmodel.SignalFlow},
		},
		FaultModes: []sysmodel.FaultModeSpec{{Name: "corrupt", Likelihood: "M"}},
	})
	m := sysmodel.NewModel("wide-chain")
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("c%d", i)
		m.MustAddComponent(&sysmodel.Component{ID: ids[i], Type: "node"})
	}
	for i := 0; i+1 < n; i++ {
		m.Connect(ids[i], "out", ids[i+1], "in", sysmodel.SignalFlow)
	}
	lib := epa.NewBehaviorLibrary(types)
	lib.MustRegister(&epa.TypeBehavior{
		Type:    "node",
		Effects: []epa.FaultEffect{{Fault: "corrupt", Port: "out", Emit: epa.StateOf(epa.ErrValue)}},
		Transfers: []epa.TransferRule{
			{From: "in", Match: epa.StateOf(epa.ErrValue), To: "out", Emit: epa.StateOf(epa.ErrValue)},
		},
	})
	eng, err := epa.NewEngine(m, lib)
	if err != nil {
		t.Fatal(err)
	}
	muts := make([]faults.Mutation, n)
	for i, id := range ids {
		muts[i] = faults.Mutation{
			Activation: epa.Activation{Component: id, Fault: "corrupt"},
			Likelihood: qual.Medium, Sources: []string{"fault_mode"},
		}
	}
	reqs := []Requirement{
		{ID: "R1", Description: "chain tail integrity", Severity: qual.High,
			Condition: Comp(ids[n-1], epa.ErrValue)},
	}
	return eng, muts, reqs
}

// projection renders everything deterministic about an analysis — the
// byte-identity oracle. Wall-clock sweep stats are deliberately absent.
func projection(a *Analysis) string {
	var sb strings.Builder
	for _, s := range a.Scenarios {
		fmt.Fprintf(&sb, "%s|%s|%v|%+v\n", s.ID, s.Scenario.Key(), s.Violated, s.Risk)
	}
	sb.WriteString(a.Summary())
	return sb.String()
}

// chaosBudget builds a budget whose context carries an injector armed
// with spec, with the cancel action bound to the context.
func chaosBudget(t *testing.T, spec string, limits budget.Limits) *budget.Budget {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if spec != "" {
		inj, err := faultinject.New(1, spec)
		if err != nil {
			t.Fatal(err)
		}
		inj.BindCancel(cancel)
		ctx = faultinject.ContextWith(ctx, inj)
	}
	return budget.New(ctx, limits)
}

// assertNoStrayTmp is the janitor satellite: after any sweep — crashed,
// cancelled, or clean — no in-flight temp file may survive.
func assertNoStrayTmp(t *testing.T, dir string) {
	t.Helper()
	_ = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".tmp") {
			t.Errorf("stray temp file %s", path)
		}
		return nil
	})
}

// TestCrashMatrix is the tentpole proof: inject a fault at every site
// the sweep crosses, let the run crash or degrade, then resume with the
// same checkpoint + cache directories and demand the final report be
// identical to an uninterrupted baseline.
func TestCrashMatrix(t *testing.T) {
	eng, muts, reqs := setupWide(t, 6) // 64 scenarios, 2 chunks
	baselineA, err := AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	baseline := projection(baselineA)

	specs := []string{
		faultinject.SiteEPARun + "=panic@11",
		faultinject.SiteEPARun + "=err@17",
		faultinject.SiteEPARun + "=transient@*",
		faultinject.SiteEPARun + "=cancel@23",
		faultinject.SiteEPARun + "=panic@r50",
		faultinject.SiteSweepChunk + "=panic@1",
		faultinject.SiteSweepChunk + "=err@2",
		faultinject.SiteStoreWrite + "=torn@1",
		faultinject.SiteStoreWrite + "=transient@1",
		faultinject.SiteCheckpointWrite + "=torn@1",
		faultinject.SiteCheckpointWrite + "=err@*",
		faultinject.SiteStoreRead + "=err@r64",
	}
	ns := SweepNamespace(eng, muts)
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) {
			dir := t.TempDir()
			sweep := func(spec string) (*Analysis, error) {
				cache, err := store.Open(filepath.Join(dir, "cache"), ns, store.Options{FlushEvery: 8})
				if err != nil {
					t.Fatal(err)
				}
				defer cache.Close()
				ck, err := OpenCheckpoint(filepath.Join(dir, "ckpt"), 8)
				if err != nil {
					t.Fatal(err)
				}
				bud := chaosBudget(t, spec, budget.Limits{})
				return AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{
					Budget: bud, Parallelism: 4, Cache: cache, Checkpoint: ck,
				})
			}

			// Run 1: the crash. Any outcome is legal — a hard error, a
			// degraded analysis, or (for recoverable faults) a complete
			// one — but it must not leave in-flight temp files around.
			a1, err1 := sweep(spec)
			_ = a1
			_ = err1
			assertNoStrayTmp(t, dir)

			// Run 2: the resume. No faults, same directories: the report
			// must be byte-identical to the uninterrupted baseline.
			a2, err2 := sweep("")
			if err2 != nil {
				t.Fatalf("resume failed: %v", err2)
			}
			if a2.Truncation != nil {
				t.Fatalf("resume truncated: %v", a2.Truncation)
			}
			if got := projection(a2); got != baseline {
				t.Fatalf("resumed report diverged from baseline:\n--- got ---\n%s\n--- want ---\n%s", got, baseline)
			}
			assertNoStrayTmp(t, dir)
		})
	}
}

// TestTransientRecoveredInFlight proves the retry path: one transient
// EPA failure recovers inside the same run, with the retry counted.
func TestTransientRecoveredInFlight(t *testing.T) {
	eng, muts, reqs := setupWide(t, 5)
	bud := chaosBudget(t, faultinject.SiteEPARun+"=transient@7", budget.Limits{})
	a, err := AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{Budget: bud, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Truncation != nil {
		t.Fatalf("transient must not degrade the sweep: %v", a.Truncation)
	}
	if len(a.Scenarios) != 32 {
		t.Fatalf("scenarios = %d", len(a.Scenarios))
	}
	if a.Sweep.Retries == 0 {
		t.Fatal("recovered transient must be counted in Sweep.Retries")
	}
}

// TestBudgetTruncatedSweepMakesProgress drives the anytime story: a
// MaxScenarios-capped sweep, re-run against the same checkpoint dir,
// advances its frontier each run and converges on the full report.
func TestBudgetTruncatedSweepMakesProgress(t *testing.T) {
	eng, muts, reqs := setupWide(t, 6) // 64 scenarios
	full, err := AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := projection(full)

	dir := t.TempDir()
	ns := SweepNamespace(eng, muts)
	var a *Analysis
	runs := 0
	for ; runs < 10; runs++ {
		cache, err := store.Open(filepath.Join(dir, "cache"), ns, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ck, err := OpenCheckpoint(filepath.Join(dir, "ckpt"), 4)
		if err != nil {
			t.Fatal(err)
		}
		a, err = AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{
			Budget:      budget.New(context.Background(), budget.Limits{MaxScenarios: 20}),
			Parallelism: 2, Cache: cache, Checkpoint: ck,
		})
		cache.Close()
		if err != nil {
			t.Fatal(err)
		}
		if a.Truncation == nil {
			break
		}
		if runs > 0 {
			if a.Resume == nil || a.Resume.FromRank == 0 {
				t.Fatalf("run %d: no resume provenance: %+v", runs, a.Resume)
			}
			if !strings.Contains(a.Truncation.Detail, "resumed from checkpoint at rank") {
				t.Fatalf("run %d: detail lacks resume provenance: %q", runs, a.Truncation.Detail)
			}
		}
	}
	if a.Truncation != nil {
		t.Fatalf("sweep never converged in %d runs: %v", runs, a.Truncation)
	}
	if runs == 0 {
		t.Fatal("first run should have truncated")
	}
	if got := projection(a); got != want {
		t.Fatalf("converged report diverged:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	if a.Sweep.Restored == 0 || a.Sweep.CacheHits == 0 {
		t.Fatalf("final run should restore from cache: %+v", a.Sweep)
	}
}

// TestCacheReuseAcrossRuns: a second full sweep over the same inputs is
// served from the cache and still produces the identical report.
func TestCacheReuseAcrossRuns(t *testing.T) {
	eng, muts, reqs := setupWide(t, 5)
	dir := t.TempDir()
	ns := SweepNamespace(eng, muts)
	run := func() *Analysis {
		cache, err := store.Open(dir, ns, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer cache.Close()
		a, err := AnalyzeSweep(eng, muts, -1, reqs, SweepConfig{Parallelism: 2, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a1 := run()
	a2 := run()
	if projection(a1) != projection(a2) {
		t.Fatal("cached rerun diverged")
	}
	if a1.Sweep.CacheHits != 0 || a2.Sweep.CacheMisses != 0 || a2.Sweep.CacheHits != 32 {
		t.Fatalf("cache stats: run1 %+v run2 %+v", a1.Sweep, a2.Sweep)
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	st := ckptState{
		Version:    ckptVersion,
		EngineHash: "00000000deadbeef",
		MutsHash:   "00000000cafef00d",
		ReqsHash:   "0000000012345678",
		MaxCard:    3,
		Frontier:   42,
		Ranges:     []CardRange{{Card: 0, Upto: 1, Total: 1}, {Card: 1, Upto: 41, Total: 64}},
		Complete:   false,
	}
	got, err := decodeCheckpoint(encodeCheckpoint(st))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("roundtrip: %+v != %+v", got, st)
	}
}

func TestCheckpointCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := ckptState{Version: ckptVersion, EngineHash: "aa", MutsHash: "bb", ReqsHash: "cc", Frontier: 7}
	if err := ck.save(st); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ckptFile)
	data, _ := os.ReadFile(path)

	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"flip payload byte", func(d []byte) []byte { d[len(d)-2] ^= 0x01; return d }},
		{"flip crc digit", func(d []byte) []byte { d[len(ckptMagic)+5] ^= 0x01; return d }},
		{"truncate", func(d []byte) []byte { return d[:len(d)/2] }},
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }},
		{"empty", func(d []byte) []byte { return nil }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.mutate(append([]byte(nil), data...)), 0o644); err != nil {
				t.Fatal(err)
			}
			ck2, err := OpenCheckpoint(dir, 1)
			if err != nil {
				t.Fatalf("corrupt checkpoint must not fail open: %v", err)
			}
			if got := ck2.Resume(0xaa, 0xbb, 0xcc, -1); got != 0 {
				t.Fatalf("corrupt checkpoint resumed at %d", got)
			}
			if _, err := os.Stat(path + ".quarantined"); err != nil {
				t.Fatal("corrupt checkpoint must be quarantined")
			}
			os.Remove(path + ".quarantined")
		})
	}
}

func TestResumeRejectsMismatchedSweep(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := ckptState{
		Version:    ckptVersion,
		EngineHash: fmt.Sprintf("%016x", uint64(1)),
		MutsHash:   fmt.Sprintf("%016x", uint64(2)),
		ReqsHash:   fmt.Sprintf("%016x", uint64(3)),
		MaxCard:    -1, Frontier: 9,
	}
	if err := ck.save(st); err != nil {
		t.Fatal(err)
	}
	ck2, err := OpenCheckpoint(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ck2.Resume(1, 2, 3, -1); got != 9 {
		t.Fatalf("matching sweep: resume = %d, want 9", got)
	}
	for _, tc := range []struct {
		name             string
		eng, muts, reqsH uint64
		maxCard          int
	}{
		{"engine changed", 9, 2, 3, -1},
		{"candidates changed", 1, 9, 3, -1},
		{"requirements changed", 1, 2, 9, -1},
		{"cardinality changed", 1, 2, 3, 2},
	} {
		if got := ck2.Resume(tc.eng, tc.muts, tc.reqsH, tc.maxCard); got != 0 {
			t.Errorf("%s: resume = %d, want 0", tc.name, got)
		}
	}
}

func TestFrontierRanges(t *testing.T) {
	// n=4, frontier 8 = 1 (card 0) + 4 (card 1) + 3 of card 2.
	got := frontierRanges(4, -1, 8)
	want := []CardRange{{0, 1, 1}, {1, 4, 4}, {2, 3, 6}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ranges = %+v, want %+v", got, want)
	}
	if r := frontierRanges(4, -1, 0); r != nil {
		t.Fatalf("empty frontier: %+v", r)
	}
}
