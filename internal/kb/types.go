package kb

import (
	"fmt"
	"sort"

	"cpsrisk/internal/qual"
)

// Weakness is a CWE-like entry: a class of software/hardware weakness.
type Weakness struct {
	ID          string `json:"id"` // e.g. "W-79"
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Patterns lists attack-pattern IDs that exploit this weakness.
	Patterns []string `json:"patterns,omitempty"`
}

// Vulnerability is a CVE-like entry: a concrete vulnerability in a
// component type (optionally version-specific, §VI: "many databases of
// known vulnerabilities are version-specific").
type Vulnerability struct {
	ID          string `json:"id"` // e.g. "V-2023-0001"
	Description string `json:"description,omitempty"`
	// WeaknessID links to the underlying weakness class.
	WeaknessID string `json:"weakness,omitempty"`
	// Vector is the CVSS v3.1 vector string.
	Vector string `json:"vector"`
	// ComponentType restricts applicability to a sysmodel component type.
	ComponentType string `json:"componentType"`
	// Versions lists affected versions; empty = all versions.
	Versions []string `json:"versions,omitempty"`
	// FaultMode is the local fault mode an exploit activates in the
	// component (the vulnerability -> fault bridge of §IV).
	FaultMode string `json:"faultMode"`
	// Mitigations lists mitigation IDs that prevent exploitation (e.g.
	// patching for version-specific vulnerabilities).
	Mitigations []string `json:"mitigations,omitempty"`
}

// Score parses the vector and computes the base score.
func (v *Vulnerability) Score() (float64, error) {
	c, err := ParseCVSS31(v.Vector)
	if err != nil {
		return 0, fmt.Errorf("vulnerability %s: %w", v.ID, err)
	}
	return c.BaseScore(), nil
}

// AffectsVersion reports whether the vulnerability applies to the version.
func (v *Vulnerability) AffectsVersion(version string) bool {
	if len(v.Versions) == 0 {
		return true
	}
	for _, ver := range v.Versions {
		if ver == version {
			return true
		}
	}
	return false
}

// AttackPattern is a CAPEC-like entry: a reusable exploitation approach.
type AttackPattern struct {
	ID          string `json:"id"` // e.g. "P-98"
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Techniques lists ATT&CK-like technique IDs realizing the pattern.
	Techniques []string `json:"techniques,omitempty"`
	// Severity is the qualitative impact label (VL..VH).
	Severity string `json:"severity,omitempty"`
}

// Tactic is an ATT&CK-like tactic (the attacker's "why").
type Tactic struct {
	ID   string `json:"id"` // e.g. "TA-01"
	Name string `json:"name"`
}

// Technique is an ATT&CK-like technique: how an attacker achieves a
// tactic against a class of assets.
type Technique struct {
	ID          string `json:"id"` // e.g. "T-0866"
	Name        string `json:"name"`
	TacticID    string `json:"tactic"`
	Description string `json:"description,omitempty"`
	// ComponentTypes lists the sysmodel component types the technique
	// applies to; empty = any.
	ComponentTypes []string `json:"componentTypes,omitempty"`
	// RequiresExposure: "" (any), "public" (needs an externally reachable
	// asset), "adjacent" (needs a compromised neighbor).
	RequiresExposure string `json:"requiresExposure,omitempty"`
	// FaultMode is the component fault mode a successful application
	// activates.
	FaultMode string `json:"faultMode,omitempty"`
	// Mitigations lists mitigation IDs that block the technique.
	Mitigations []string `json:"mitigations,omitempty"`
	// AttackCost is the qualitative attacker effort (VL..VH) — the
	// "attack cost" input of the §IV-D optimization tasks.
	AttackCost string `json:"attackCost,omitempty"`
	// Likelihood is the qualitative threat-event frequency (VL..VH).
	Likelihood string `json:"likelihood,omitempty"`
}

// Mitigation is an ATT&CK-mitigation-like entry with cost metrics for the
// cost-benefit optimization (§IV-D).
type Mitigation struct {
	ID          string `json:"id"` // e.g. "M-0917"
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Cost is the implementation cost in abstract budget units.
	Cost int `json:"cost"`
	// MaintenanceCost is the recurring cost per period (total cost of
	// ownership includes the maintenance of the protection, §IV-D).
	MaintenanceCost int `json:"maintenanceCost,omitempty"`
}

// KB is the indexed knowledge base.
type KB struct {
	weaknesses  map[string]*Weakness
	vulns       map[string]*Vulnerability
	patterns    map[string]*AttackPattern
	tactics     map[string]*Tactic
	techniques  map[string]*Technique
	mitigations map[string]*Mitigation

	vulnsByType map[string][]*Vulnerability
	techsByType map[string][]*Technique
	anyTypeTech []*Technique
}

// New creates an empty knowledge base.
func New() *KB {
	return &KB{
		weaknesses:  map[string]*Weakness{},
		vulns:       map[string]*Vulnerability{},
		patterns:    map[string]*AttackPattern{},
		tactics:     map[string]*Tactic{},
		techniques:  map[string]*Technique{},
		mitigations: map[string]*Mitigation{},
		vulnsByType: map[string][]*Vulnerability{},
		techsByType: map[string][]*Technique{},
	}
}

// AddWeakness registers a weakness.
func (k *KB) AddWeakness(w *Weakness) error {
	if w.ID == "" {
		return fmt.Errorf("kb: weakness with empty ID")
	}
	if _, dup := k.weaknesses[w.ID]; dup {
		return fmt.Errorf("kb: duplicate weakness %q", w.ID)
	}
	k.weaknesses[w.ID] = w
	return nil
}

// AddVulnerability registers a vulnerability; its vector must parse.
func (k *KB) AddVulnerability(v *Vulnerability) error {
	if v.ID == "" {
		return fmt.Errorf("kb: vulnerability with empty ID")
	}
	if _, dup := k.vulns[v.ID]; dup {
		return fmt.Errorf("kb: duplicate vulnerability %q", v.ID)
	}
	if _, err := ParseCVSS31(v.Vector); err != nil {
		return err
	}
	if v.ComponentType == "" {
		return fmt.Errorf("kb: vulnerability %q without component type", v.ID)
	}
	if v.FaultMode == "" {
		return fmt.Errorf("kb: vulnerability %q without fault mode", v.ID)
	}
	k.vulns[v.ID] = v
	k.vulnsByType[v.ComponentType] = append(k.vulnsByType[v.ComponentType], v)
	return nil
}

// AddPattern registers an attack pattern.
func (k *KB) AddPattern(p *AttackPattern) error {
	if p.ID == "" {
		return fmt.Errorf("kb: pattern with empty ID")
	}
	if _, dup := k.patterns[p.ID]; dup {
		return fmt.Errorf("kb: duplicate pattern %q", p.ID)
	}
	k.patterns[p.ID] = p
	return nil
}

// AddTactic registers a tactic.
func (k *KB) AddTactic(t *Tactic) error {
	if t.ID == "" {
		return fmt.Errorf("kb: tactic with empty ID")
	}
	if _, dup := k.tactics[t.ID]; dup {
		return fmt.Errorf("kb: duplicate tactic %q", t.ID)
	}
	k.tactics[t.ID] = t
	return nil
}

// AddTechnique registers a technique.
func (k *KB) AddTechnique(t *Technique) error {
	if t.ID == "" {
		return fmt.Errorf("kb: technique with empty ID")
	}
	if _, dup := k.techniques[t.ID]; dup {
		return fmt.Errorf("kb: duplicate technique %q", t.ID)
	}
	k.techniques[t.ID] = t
	if len(t.ComponentTypes) == 0 {
		k.anyTypeTech = append(k.anyTypeTech, t)
	}
	for _, ct := range t.ComponentTypes {
		k.techsByType[ct] = append(k.techsByType[ct], t)
	}
	return nil
}

// AddMitigation registers a mitigation.
func (k *KB) AddMitigation(m *Mitigation) error {
	if m.ID == "" {
		return fmt.Errorf("kb: mitigation with empty ID")
	}
	if _, dup := k.mitigations[m.ID]; dup {
		return fmt.Errorf("kb: duplicate mitigation %q", m.ID)
	}
	if m.Cost < 0 || m.MaintenanceCost < 0 {
		return fmt.Errorf("kb: mitigation %q has negative cost", m.ID)
	}
	k.mitigations[m.ID] = m
	return nil
}

// Weakness looks up a weakness.
func (k *KB) Weakness(id string) (*Weakness, bool) { w, ok := k.weaknesses[id]; return w, ok }

// Vulnerability looks up a vulnerability.
func (k *KB) Vulnerability(id string) (*Vulnerability, bool) { v, ok := k.vulns[id]; return v, ok }

// Pattern looks up an attack pattern.
func (k *KB) Pattern(id string) (*AttackPattern, bool) { p, ok := k.patterns[id]; return p, ok }

// Tactic looks up a tactic.
func (k *KB) Tactic(id string) (*Tactic, bool) { t, ok := k.tactics[id]; return t, ok }

// Technique looks up a technique.
func (k *KB) Technique(id string) (*Technique, bool) { t, ok := k.techniques[id]; return t, ok }

// Mitigation looks up a mitigation.
func (k *KB) Mitigation(id string) (*Mitigation, bool) { m, ok := k.mitigations[id]; return m, ok }

// VulnsFor returns the vulnerabilities applicable to a component type and
// version, sorted by ID.
func (k *KB) VulnsFor(componentType, version string) []*Vulnerability {
	var out []*Vulnerability
	for _, v := range k.vulnsByType[componentType] {
		if v.AffectsVersion(version) {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TechniquesFor returns the techniques applicable to a component type,
// sorted by ID.
func (k *KB) TechniquesFor(componentType string) []*Technique {
	out := append([]*Technique(nil), k.techsByType[componentType]...)
	out = append(out, k.anyTypeTech...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MitigationsFor returns the mitigations that block the technique, sorted
// by ID.
func (k *KB) MitigationsFor(techniqueID string) []*Mitigation {
	t, ok := k.techniques[techniqueID]
	if !ok {
		return nil
	}
	out := make([]*Mitigation, 0, len(t.Mitigations))
	for _, id := range t.Mitigations {
		if m, ok := k.mitigations[id]; ok {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Mitigations returns all mitigations sorted by ID.
func (k *KB) Mitigations() []*Mitigation {
	out := make([]*Mitigation, 0, len(k.mitigations))
	for _, m := range k.mitigations {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Techniques returns all techniques sorted by ID.
func (k *KB) Techniques() []*Technique {
	out := make([]*Technique, 0, len(k.techniques))
	for _, t := range k.techniques {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Validate checks referential integrity across the catalogs: vulnerability
// weaknesses, weakness patterns, pattern techniques, technique tactics and
// mitigations must all resolve, and qualitative labels must parse.
func (k *KB) Validate() error {
	five := qual.FiveLevel()
	for id, v := range k.vulns {
		if v.WeaknessID != "" {
			if _, ok := k.weaknesses[v.WeaknessID]; !ok {
				return fmt.Errorf("kb: vulnerability %s references unknown weakness %q", id, v.WeaknessID)
			}
		}
		for _, m := range v.Mitigations {
			if _, ok := k.mitigations[m]; !ok {
				return fmt.Errorf("kb: vulnerability %s references unknown mitigation %q", id, m)
			}
		}
	}
	for id, w := range k.weaknesses {
		for _, p := range w.Patterns {
			if _, ok := k.patterns[p]; !ok {
				return fmt.Errorf("kb: weakness %s references unknown pattern %q", id, p)
			}
		}
	}
	for id, p := range k.patterns {
		for _, t := range p.Techniques {
			if _, ok := k.techniques[t]; !ok {
				return fmt.Errorf("kb: pattern %s references unknown technique %q", id, t)
			}
		}
		if p.Severity != "" {
			if _, err := five.Parse(p.Severity); err != nil {
				return fmt.Errorf("kb: pattern %s: %w", id, err)
			}
		}
	}
	for id, t := range k.techniques {
		if _, ok := k.tactics[t.TacticID]; !ok {
			return fmt.Errorf("kb: technique %s references unknown tactic %q", id, t.TacticID)
		}
		for _, m := range t.Mitigations {
			if _, ok := k.mitigations[m]; !ok {
				return fmt.Errorf("kb: technique %s references unknown mitigation %q", id, m)
			}
		}
		for _, label := range []string{t.AttackCost, t.Likelihood} {
			if label != "" {
				if _, err := five.Parse(label); err != nil {
					return fmt.Errorf("kb: technique %s: %w", id, err)
				}
			}
		}
		if t.RequiresExposure != "" && t.RequiresExposure != "public" && t.RequiresExposure != "adjacent" {
			return fmt.Errorf("kb: technique %s has invalid exposure %q", id, t.RequiresExposure)
		}
	}
	return nil
}

// Counts summarizes catalog sizes.
type Counts struct {
	Weaknesses, Vulnerabilities, Patterns, Tactics, Techniques, Mitigations int
}

// Counts returns catalog sizes.
func (k *KB) Counts() Counts {
	return Counts{
		Weaknesses:      len(k.weaknesses),
		Vulnerabilities: len(k.vulns),
		Patterns:        len(k.patterns),
		Tactics:         len(k.tactics),
		Techniques:      len(k.techniques),
		Mitigations:     len(k.mitigations),
	}
}
