// Package artifact is the content-addressed cache of compiled pipeline
// intermediates: the lowered (refined, validated) sysmodel, the compiled
// EPA engine, the candidate-mutation set, the finished hazard analysis,
// and — on the ASP path — a live multi-shot solver session with its
// learning retained. Entries are keyed by the canonical model hash
// (sysmodel.Model.Hash) plus a hash of every assessment-relevant
// configuration input, so a warm lookup is sound by construction: equal
// key means equal report.
//
// The cache also answers *nearest-parent* queries for delta
// re-assessment: given the fingerprint of an edited model, Nearest
// returns the completed entry under the same configuration whose
// structural diff touches the fewest components. The caller re-runs only
// the invalidated part of the scenario space against the parent's rows.
//
// Eviction is LRU with a fixed entry cap. Evicting an entry closes its
// solver session (grounded state is unrecoverable once evicted — the
// next run re-grounds). All methods are safe for concurrent use; the
// session inside an entry keeps the solver package's single-goroutine
// contract, guarded by the entry mutex.
package artifact

import (
	"container/list"
	"sync"
	"sync/atomic"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/solver"
	"cpsrisk/internal/sysmodel"
)

// Key addresses one cache entry: the canonical model content hash and
// the configuration hash (requirements, type library, mutation sources,
// mitigations, cardinality bound, deterministic budget caps — every
// input that changes the report).
type Key struct {
	Model uint64
	Cfg   uint64
}

// Entry holds the compiled artifacts of one completed (or partially
// completed) assessment.
type Entry struct {
	// Fingerprint is the structural identity of Model — kept so Nearest
	// can diff candidates without re-hashing.
	Fingerprint *sysmodel.Fingerprint
	// Model is the lowered model: cloned, composites refined, validated.
	Model *sysmodel.Model
	// Engine is the compiled EPA engine (immutable, concurrent-safe).
	Engine *epa.Engine
	// Candidates / Analyzed mirror the pipeline's candidate stage output.
	Candidates []faults.Mutation
	Analyzed   []faults.Mutation
	// Compromisable is the attack-graph projection (nil without a KB).
	Compromisable []string
	// Analysis is the finished hazard identification. Its rows are the
	// reuse substrate for delta re-assessment.
	Analysis *hazard.Analysis
	// Complete reports a degradation-free analysis: no truncation, no
	// recorded degradations. Only complete entries are reused wholesale
	// or served as delta parents — a truncated parent's missing rows
	// would silently propagate into the child report.
	Complete bool
	// Pins holds configuration inputs the entry's key identifies by
	// pointer (type library, behaviour library, KB). Keeping them
	// reachable from the entry guarantees the addresses folded into the
	// key cannot be recycled onto different objects while the entry is
	// cached — pointer-keyed hashing stays unambiguous.
	Pins []any

	// mu serializes use of Session (the solver's single-goroutine
	// contract) and the lazy ranked projection. Lock it around any
	// Session call.
	mu sync.Mutex
	// ranked is the risk-ranked projection of Analysis, computed on first
	// use so warm and zero-invalidation delta resolutions skip re-ranking.
	ranked []hazard.ScenarioResult
	// Session is a live multi-shot solver session grounded for this
	// model (ASP path only; nil on the native path). Owned by the
	// entry: eviction closes it.
	Session *solver.Session
}

// Ranked returns the risk-ranked projection of the entry's analysis,
// computing it on first use and reusing it afterwards. Callers must not
// mutate the returned slice.
func (e *Entry) Ranked() []hazard.ScenarioResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ranked == nil && e.Analysis != nil {
		e.ranked = e.Analysis.Ranked()
	}
	return e.ranked
}

// SetRanked seeds the ranked projection (used when the caller already
// computed it for its own report).
func (e *Entry) SetRanked(r []hazard.ScenarioResult) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ranked = r
}

// LockSession acquires the entry's session guard and returns the session
// (which may be nil) plus the unlock func.
func (e *Entry) LockSession() (*solver.Session, func()) {
	e.mu.Lock()
	return e.Session, e.mu.Unlock
}

// TakeSession removes and returns the entry's session, transferring
// ownership to the caller (nil when the entry holds none). Used by delta
// re-assessment to migrate a still-valid grounded session from the
// parent entry into the child instead of re-grounding.
func (e *Entry) TakeSession() *solver.Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.Session
	e.Session = nil
	return s
}

// closeSession releases the entry's solver session, if any.
func (e *Entry) closeSession() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.Session != nil {
		e.Session.Close()
		e.Session = nil
	}
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Hits, Misses, Evictions int64
}

// Cache is a bounded LRU artifact cache.
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *slot
	entries map[Key]*list.Element

	hits, misses, evictions atomic.Int64
}

type slot struct {
	key Key
	e   *Entry
}

// DefaultCap is the entry cap used when New is given n <= 0. Entries
// hold compiled engines and (on the ASP path) grounded solver sessions,
// so the cap is deliberately small — this is a working set, not a store.
const DefaultCap = 8

// New creates a cache holding at most n entries (n <= 0 uses DefaultCap).
func New(n int) *Cache {
	if n <= 0 {
		n = DefaultCap
	}
	return &Cache{cap: n, order: list.New(), entries: make(map[Key]*list.Element)}
}

// Get returns the entry for k, marking it most recently used. A nil
// cache always misses.
func (c *Cache) Get(k Key) (*Entry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*slot).e, true
}

// Nearest returns the complete entry with configuration hash cfg whose
// model diffs against fp with the fewest touched components, along with
// that delta. Entries whose diff changes the requirement set are not
// eligible (requirement changes re-score every row — nothing to reuse).
// Returns nil when no eligible parent exists. Does not update recency
// and counts neither a hit nor a miss — the caller records the outcome
// of the overall resolution instead.
func (c *Cache) Nearest(cfg uint64, fp *sysmodel.Fingerprint) (*Entry, *sysmodel.Delta) {
	if c == nil {
		return nil, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var (
		best  *Entry
		bestD *sysmodel.Delta
	)
	for el := c.order.Front(); el != nil; el = el.Next() {
		s := el.Value.(*slot)
		if s.key.Cfg != cfg || !s.e.Complete || s.e.Analysis == nil {
			continue
		}
		d := s.e.Fingerprint.Diff(fp)
		if d.RequirementsChanged {
			continue
		}
		if best == nil || d.Touched() < bestD.Touched() {
			best, bestD = s.e, d
			// Stop scanning once the diff is a single component (or a
			// connection-only edit, Touched 0): an identical model would
			// have been an exact Get hit, so nothing meaningfully closer
			// exists. The scan starts at the most recent entry, so an
			// edit-after-edit workload stops on the first candidate.
			if bestD.Touched() <= 1 {
				break
			}
		}
	}
	return best, bestD
}

// Put inserts (or replaces) the entry for k and marks it most recently
// used, evicting the least recently used entry beyond the cap. A
// replaced or evicted entry has its solver session closed unless it is
// the same entry being re-inserted. No-op on a nil cache.
func (c *Cache) Put(k Key, e *Entry) {
	if c == nil || e == nil {
		return
	}
	var closing []*Entry
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		old := el.Value.(*slot).e
		if old != e {
			closing = append(closing, old)
		}
		el.Value.(*slot).e = e
		c.order.MoveToFront(el)
	} else {
		c.entries[k] = c.order.PushFront(&slot{key: k, e: e})
		for c.order.Len() > c.cap {
			back := c.order.Back()
			s := back.Value.(*slot)
			c.order.Remove(back)
			delete(c.entries, s.key)
			closing = append(closing, s.e)
			c.evictions.Add(1)
		}
	}
	c.mu.Unlock()
	for _, old := range closing {
		old.closeSession()
	}
}

// Len reports the current entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots the hit/miss/eviction counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Evictions: c.evictions.Load()}
}

// Close evicts everything, closing all solver sessions.
func (c *Cache) Close() {
	if c == nil {
		return
	}
	c.mu.Lock()
	var all []*Entry
	for el := c.order.Front(); el != nil; el = el.Next() {
		all = append(all, el.Value.(*slot).e)
	}
	c.order.Init()
	c.entries = make(map[Key]*list.Element)
	c.mu.Unlock()
	for _, e := range all {
		e.closeSession()
	}
}
