package qual

import (
	"math"
	"testing"
	"testing/quick"
)

func tankSpace(t *testing.T) *QuantitySpace {
	t.Helper()
	qs, err := NewQuantitySpace("level",
		[]float64{0.1, 0.3, 0.7, 0.9},
		[]string{"empty", "low", "normal", "high", "overflow"})
	if err != nil {
		t.Fatalf("NewQuantitySpace: %v", err)
	}
	return qs
}

func TestQuantitySpaceValidation(t *testing.T) {
	tests := []struct {
		name      string
		landmarks []float64
		labels    []string
		wantErr   bool
	}{
		{"ok", []float64{1, 2}, []string{"a", "b", "c"}, false},
		{"label count mismatch", []float64{1, 2}, []string{"a", "b"}, true},
		{"non-increasing", []float64{2, 1}, []string{"a", "b", "c"}, true},
		{"equal landmarks", []float64{1, 1}, []string{"a", "b", "c"}, true},
		{"nan landmark", []float64{math.NaN()}, []string{"a", "b"}, true},
		{"inf landmark", []float64{math.Inf(1)}, []string{"a", "b"}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewQuantitySpace("q", tt.landmarks, tt.labels)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err=%v wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestAbstract(t *testing.T) {
	qs := tankSpace(t)
	tests := []struct {
		v    float64
		want string
	}{
		{-1.0, "empty"},
		{0.0, "empty"},
		{0.0999, "empty"},
		{0.1, "low"}, // landmarks belong to the upper region
		{0.2, "low"},
		{0.3, "normal"},
		{0.5, "normal"},
		{0.7, "high"},
		{0.89, "high"},
		{0.9, "overflow"},
		{5.0, "overflow"},
	}
	for _, tt := range tests {
		if got := qs.Scale().Label(qs.Abstract(tt.v)); got != tt.want {
			t.Errorf("Abstract(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

// Property: abstraction is monotone.
func TestAbstractMonotone(t *testing.T) {
	qs := tankSpace(t)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return qs.Abstract(a) <= qs.Abstract(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Representative(l) abstracts back to l (round trip through the
// concretization used by CEGAR).
func TestRepresentativeRoundTrip(t *testing.T) {
	qs := tankSpace(t)
	s := qs.Scale()
	for l := s.Min(); l <= s.Max(); l++ {
		v := qs.Representative(l)
		if got := qs.Abstract(v); got != l {
			t.Errorf("Abstract(Representative(%d)=%v) = %d", l, v, got)
		}
	}
}

func TestAbstractSeries(t *testing.T) {
	qs := tankSpace(t)
	levels := qs.AbstractSeries([]float64{0.05, 0.2, 0.5, 0.8, 0.95})
	want := []string{"empty", "low", "normal", "high", "overflow"}
	for i, l := range levels {
		if qs.Scale().Label(l) != want[i] {
			t.Errorf("series[%d] = %q, want %q", i, qs.Scale().Label(l), want[i])
		}
	}
}

func TestQuantitySpaceString(t *testing.T) {
	qs := tankSpace(t)
	want := "level[empty |0.1| low |0.3| normal |0.7| high |0.9| overflow]"
	if got := qs.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestLandmarksIsCopy(t *testing.T) {
	qs := tankSpace(t)
	lms := qs.Landmarks()
	lms[0] = 999
	if qs.Abstract(0.05) != 0 {
		t.Error("Landmarks() must return a copy")
	}
}
