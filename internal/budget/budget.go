// Package budget implements resource governance for the assessment
// pipeline: wall-clock deadlines plus effort caps (solver decisions and
// conflicts, grounding-rule instantiations, scenario count), and the
// Degradation report recording exactly which stage was truncated and how.
//
// The design goal is *anytime* answers: a preliminary assessment run by an
// SME must be bounded, interruptible, and able to return a useful partial
// result instead of hanging on a combinatorial blowup. Every governed
// stage checks its Budget at loop granularity and, on exhaustion, either
// returns what it completed so far (recording a Truncation) or aborts
// with an *ExhaustedError when a partial result would be unsound.
package budget

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/obs"
)

// Canonical truncation/exhaustion reasons.
const (
	ReasonDeadline    = "deadline"
	ReasonCancelled   = "cancelled"
	ReasonDecisions   = "decision-cap"
	ReasonConflicts   = "conflict-cap"
	ReasonGroundRules = "ground-rule-cap"
	ReasonScenarios   = "scenario-cap"
)

// Limits is the declarative cap set for one pipeline run. The zero value
// means "unlimited" for every resource.
type Limits struct {
	// Timeout bounds the wall clock of the whole run (0 = none).
	Timeout time.Duration
	// MaxDecisions caps solver branching decisions (0 = unlimited).
	MaxDecisions int64
	// MaxConflicts caps solver conflicts (0 = unlimited).
	MaxConflicts int64
	// MaxGroundRules caps emitted ground-rule instantiations
	// (0 = unlimited).
	MaxGroundRules int
	// MaxScenarios caps the number of analyzed scenarios (0 = unlimited).
	MaxScenarios int
}

// IsZero reports whether no limit is set.
func (l Limits) IsZero() bool { return l == Limits{} }

// Budget is a live resource account: limits plus the context carrying
// cancellation and the deadline. A nil *Budget is valid and unlimited —
// every method is nil-receiver safe.
type Budget struct {
	ctx    context.Context
	limits Limits
	inj    *faultinject.Injector
	gov    *Governor
}

// New binds limits to a context. The Timeout field is NOT applied here;
// use WithTimeout when the budget should install its own deadline.
// Like the tracing span and the metrics registry, a fault injector
// carried by ctx is captured once here, so hot paths read it back with a
// field access instead of a context walk.
func New(ctx context.Context, l Limits) *Budget {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Budget{ctx: ctx, limits: l, inj: faultinject.FromContext(ctx), gov: GovernorFromContext(ctx)}
}

// WithTimeout derives a budget whose context enforces l.Timeout (when
// non-zero) on top of ctx. The caller must call the returned cancel
// function to release the timer.
func WithTimeout(ctx context.Context, l Limits) (*Budget, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := context.CancelFunc(func() {})
	if l.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, l.Timeout)
	}
	return New(ctx, l), cancel
}

// Context returns the governing context (context.Background for a nil
// budget).
func (b *Budget) Context() context.Context {
	if b == nil || b.ctx == nil {
		return context.Background()
	}
	return b.ctx
}

// Injector returns the fault injector captured from the budget's context
// (nil for a nil budget or an uninstrumented run). Callers pay one nil
// check when injection is off.
func (b *Budget) Injector() *faultinject.Injector {
	if b == nil {
		return nil
	}
	return b.inj
}

// Limits returns the cap set (the zero value for a nil budget).
func (b *Budget) Limits() Limits {
	if b == nil {
		return Limits{}
	}
	return b.limits
}

// Err reports the context state as an *ExhaustedError attributed to the
// given stage ("deadline" or "cancelled"), or nil while time remains.
func (b *Budget) Err(stage string) error {
	if b == nil || b.ctx == nil {
		return nil
	}
	if err := b.ctx.Err(); err != nil {
		return &ExhaustedError{Stage: stage, Reason: ctxReason(err)}
	}
	return nil
}

func ctxReason(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return ReasonDeadline
	}
	return ReasonCancelled
}

// ExhaustedError reports that a resource cap aborted a stage entirely
// (as opposed to truncating it with partial results).
type ExhaustedError struct {
	Stage  string // pipeline stage, e.g. "solve", "ground", "hazard"
	Reason string // one of the Reason* constants
	Detail string // optional human-readable context
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	msg := fmt.Sprintf("budget: %s exhausted in stage %q", e.Reason, e.Stage)
	if e.Detail != "" {
		msg += " (" + e.Detail + ")"
	}
	return msg
}

// Exhausted unwraps err as an *ExhaustedError.
func Exhausted(err error) (*ExhaustedError, bool) {
	var e *ExhaustedError
	if errors.As(err, &e) {
		return e, true
	}
	return nil, false
}

// Truncation records one stage that was cut short: which stage, why, and
// what the partial result covers. When the run is traced, Span and
// ElapsedMS pin down *where in the pipeline and when* the budget tripped
// — the innermost active span and the wall time since the run started —
// so a degraded report says not just that a stage was skipped but at
// which point the resources ran out.
type Truncation struct {
	Stage  string `json:"stage"`
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
	// Span is the path of the innermost tracing span active at the trip
	// (empty when the run was not traced).
	Span string `json:"span,omitempty"`
	// ElapsedMS is the wall time from the start of the traced run to the
	// trip, in milliseconds (0 when the run was not traced).
	ElapsedMS int64 `json:"elapsedMs,omitempty"`
}

// Stamp fills Span/ElapsedMS from the tracing span carried by ctx, when
// one is present and the truncation is not already stamped. Creation
// sites call this with the governing budget's context at the moment the
// cap fires.
func (t *Truncation) Stamp(ctx context.Context) {
	if t.Span != "" {
		return
	}
	sp := obs.SpanFromContext(ctx)
	if sp == nil {
		return
	}
	t.Span = sp.Path()
	t.ElapsedMS = sp.TraceElapsed().Milliseconds()
}

// String implements fmt.Stringer.
func (t Truncation) String() string {
	s := t.Stage + ": " + t.Reason
	if t.Detail != "" {
		s += " — " + t.Detail
	}
	if t.Span != "" {
		s += fmt.Sprintf(" (at %s, %dms in)", t.Span, t.ElapsedMS)
	}
	return s
}

// Degradation is the run-level record of every truncation. A run with an
// empty Degradation completed exactly; otherwise the report tells the
// user which results are partial and how to interpret them.
type Degradation struct {
	Truncations []Truncation `json:"truncations,omitempty"`
}

// Degraded reports whether anything was truncated.
func (d *Degradation) Degraded() bool { return d != nil && len(d.Truncations) > 0 }

// Add appends a truncation.
func (d *Degradation) Add(stage, reason, detail string) {
	d.Truncations = append(d.Truncations, Truncation{Stage: stage, Reason: reason, Detail: detail})
}

// Record appends an existing truncation.
func (d *Degradation) Record(t Truncation) { d.Truncations = append(d.Truncations, t) }

// RecordError records err when it is an *ExhaustedError and reports
// whether it was one (callers re-raise other errors).
func (d *Degradation) RecordError(err error) bool {
	e, ok := Exhausted(err)
	if !ok {
		return false
	}
	d.Truncations = append(d.Truncations, Truncation{Stage: e.Stage, Reason: e.Reason, Detail: e.Detail})
	return true
}

// Summary renders one line per truncation, empty string when complete.
func (d *Degradation) Summary() string {
	if !d.Degraded() {
		return ""
	}
	lines := make([]string, len(d.Truncations))
	for i, t := range d.Truncations {
		lines[i] = t.String()
	}
	return strings.Join(lines, "\n")
}
