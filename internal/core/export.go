package core

import (
	"encoding/json"
	"io"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/obs"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/risk"
)

// Summary is the machine-readable projection of an Assessment for
// downstream tooling (dashboards, ticketing): plain data, no interfaces.
type Summary struct {
	// TraceID is the run's correlation ID (absent when none was set).
	TraceID string `json:"traceId,omitempty"`
	Model   struct {
		Components  int `json:"components"`
		Connections int `json:"connections"`
	} `json:"model"`
	Candidates    []CandidateSummary `json:"candidates"`
	Compromisable []string           `json:"compromisable,omitempty"`
	Scenarios     []ScenarioSummary  `json:"scenarios"`
	Plan          *PlanSummary       `json:"plan,omitempty"`
	Refinement    *CEGARSummary      `json:"refinement,omitempty"`
	// Degradation lists resource-budget truncations; absent when the run
	// completed exactly.
	Degradation []budget.Truncation `json:"degradation,omitempty"`
	// Solver carries search statistics when the ASP path ran.
	Solver *SolverSummary `json:"solver,omitempty"`
	// Sweep carries scenario-sweep statistics when the native engine ran.
	Sweep *SweepSummary `json:"sweep,omitempty"`
	// Artifact reports the artifact-cache resolution (cold/warm/delta);
	// absent when no artifact cache was configured.
	Artifact *ArtifactSummary `json:"artifact,omitempty"`
	// DurationMS is wall-clock time for the whole assessment.
	DurationMS int64 `json:"durationMs,omitempty"`
	// Trace is the span tree of the run; present only when the assessment
	// was configured with a trace.
	Trace *obs.SpanSnapshot `json:"trace,omitempty"`
	// Metrics is the metrics-registry snapshot; present only when the
	// assessment was configured with a registry.
	Metrics *obs.MetricsSnapshot `json:"metrics,omitempty"`
}

// SweepSummary is the native scenario sweep's effort for the run.
type SweepSummary struct {
	Workers    int   `json:"workers"`
	Scenarios  int   `json:"scenarios"`
	DurationMS int64 `json:"durationMs"`
	// CacheHits/CacheMisses report persistent result-cache traffic
	// (omitted when the sweep ran without a cache).
	CacheHits   int64 `json:"cacheHits,omitempty"`
	CacheMisses int64 `json:"cacheMisses,omitempty"`
	// Retries counts transient failures recovered in flight.
	Retries int64 `json:"retries,omitempty"`
	// ResumedFromRank is the checkpoint frontier the sweep resumed from
	// (absent for a fresh sweep) — resume provenance for tooling.
	ResumedFromRank int `json:"resumedFromRank,omitempty"`
	// Executed counts scenarios evaluated against a full EPA result;
	// Pruned and OrbitHits count rows synthesized by dominance skipping
	// and symmetry replication instead (absent on unpruned sweeps).
	Executed  int64 `json:"executed,omitempty"`
	Pruned    int64 `json:"pruned,omitempty"`
	OrbitHits int64 `json:"orbitHits,omitempty"`
	// OrbitClasses is the number of interchangeable-component classes
	// the pruner detected (absent when none).
	OrbitClasses int `json:"orbitClasses,omitempty"`
	// Reused counts rows answered by the delta-reuse oracle from a
	// cached parent analysis instead of executing (absent outside delta
	// re-assessment).
	Reused int64 `json:"reused,omitempty"`
	// Shard is "index/count" when the sweep covered one rank-range shard
	// of the space (absent for whole-space sweeps).
	Shard string `json:"shard,omitempty"`
}

// ArtifactSummary is the artifact-cache resolution of the run.
type ArtifactSummary struct {
	// Path is "cold", "warm", or "delta".
	Path string `json:"path"`
	// ModelHash is the canonical model content hash, in hex.
	ModelHash string `json:"modelHash"`
	// Touched / Affected describe the delta: components the edit touched
	// and the size of the invalidated closure (absent outside delta).
	Touched  int `json:"touched,omitempty"`
	Affected int `json:"affected,omitempty"`
}

// SolverSummary is the ASP solver's search effort for the run.
type SolverSummary struct {
	Atoms          int   `json:"atoms"`
	GroundRules    int   `json:"groundRules"`
	Vars           int   `json:"vars"`
	Clauses        int   `json:"clauses"`
	Decisions      int64 `json:"decisions"`
	Conflicts      int64 `json:"conflicts"`
	Propagations   int64 `json:"propagations"`
	Restarts       int64 `json:"restarts"`
	LearnedClauses int64 `json:"learnedClauses"`
	Backjumps      int64 `json:"backjumps"`
	DBReductions   int64 `json:"dbReductions"`
	DurationMS     int64 `json:"durationMs"`
	// Multi-shot counters (zero on single-shot runs).
	Sessions          int64 `json:"sessions,omitempty"`
	Queries           int64 `json:"queries,omitempty"`
	Adds              int64 `json:"adds,omitempty"`
	GroundAtomsReused int64 `json:"groundAtomsReused,omitempty"`
	LearnedReused     int64 `json:"learnedReused,omitempty"`
	// Portfolio counters (zero unless the run raced multiple engines).
	PortfolioWorkers int64 `json:"portfolioWorkers,omitempty"`
	PortfolioWins    int64 `json:"portfolioWins,omitempty"`
	ClausesExported  int64 `json:"clausesExported,omitempty"`
	ClausesImported  int64 `json:"clausesImported,omitempty"`
	ExchangeDrops    int64 `json:"exchangeDrops,omitempty"`
}

// CandidateSummary is one candidate mutation.
type CandidateSummary struct {
	Component  string   `json:"component"`
	Fault      string   `json:"fault"`
	Likelihood string   `json:"likelihood"`
	Sources    []string `json:"sources"`
}

// ScenarioSummary is one analyzed scenario with its risk verdict.
type ScenarioSummary struct {
	ID          string   `json:"id"`
	Activations []string `json:"activations"`
	Violated    []string `json:"violated,omitempty"`
	Likelihood  string   `json:"likelihood"`
	Severity    string   `json:"severity"`
	Risk        string   `json:"risk"`
	Treatment   string   `json:"treatment"`
}

// PlanSummary is the optimization outcome.
type PlanSummary struct {
	Selected     []string `json:"selected"`
	Cost         int      `json:"cost"`
	ResidualLoss int      `json:"residualLoss"`
	Total        int      `json:"total"`
	Blocked      []string `json:"blocked,omitempty"`
}

// CEGARSummary is the validation outcome.
type CEGARSummary struct {
	Confirmed    []string `json:"confirmed,omitempty"`
	Spurious     []string `json:"spurious,omitempty"`
	Undetermined []string `json:"undetermined,omitempty"`
}

// Summarize projects the assessment into plain data, scenarios in ranked
// order.
func (a *Assessment) Summarize() *Summary {
	s := qual.FiveLevel()
	out := &Summary{TraceID: a.TraceID}
	out.Model.Components = a.ModelStats.Components
	out.Model.Connections = a.ModelStats.Connections
	for _, m := range a.Candidates {
		out.Candidates = append(out.Candidates, CandidateSummary{
			Component:  m.Component,
			Fault:      m.Fault,
			Likelihood: s.Label(m.Likelihood),
			Sources:    m.Sources,
		})
	}
	out.Compromisable = a.Compromisable
	for _, sc := range a.Ranked {
		row := ScenarioSummary{
			ID:         sc.ID,
			Violated:   sc.Violated,
			Likelihood: s.Label(sc.Risk.Likelihood),
			Severity:   s.Label(sc.Risk.Severity),
			Risk:       s.Label(sc.Risk.Risk),
			Treatment:  risk.TreatmentFor(sc.Risk.Risk).String(),
		}
		for _, act := range sc.Scenario {
			row.Activations = append(row.Activations, act.String())
		}
		out.Scenarios = append(out.Scenarios, row)
	}
	if len(a.Plan.Selected) > 0 || a.Plan.Total > 0 {
		out.Plan = &PlanSummary{
			Selected:     a.Plan.Selected,
			Cost:         a.Plan.Cost,
			ResidualLoss: a.Plan.ResidualLoss,
			Total:        a.Plan.Total,
			Blocked:      a.Plan.Blocked,
		}
	}
	if a.Refinement != nil {
		c := &CEGARSummary{}
		for _, j := range a.Refinement.Confirmed() {
			c.Confirmed = append(c.Confirmed, j.Finding.String())
		}
		for _, j := range a.Refinement.Spurious() {
			c.Spurious = append(c.Spurious, j.Finding.String())
		}
		for _, j := range a.Refinement.Undetermined() {
			c.Undetermined = append(c.Undetermined, j.Finding.String())
		}
		out.Refinement = c
	}
	if a.Degradation.Degraded() {
		out.Degradation = a.Degradation.Truncations
	}
	if a.Analysis != nil && a.Analysis.Sweep != nil {
		sw := a.Analysis.Sweep
		out.Sweep = &SweepSummary{
			Workers:      sw.Workers,
			Scenarios:    sw.Scenarios,
			DurationMS:   sw.Duration.Milliseconds(),
			CacheHits:    sw.CacheHits,
			CacheMisses:  sw.CacheMisses,
			Retries:      sw.Retries,
			Executed:     sw.Executed,
			Pruned:       sw.Pruned,
			OrbitHits:    sw.OrbitHits,
			OrbitClasses: sw.OrbitClasses,
			Reused:       sw.Reused,
			Shard:        sw.Shard,
		}
		if a.Analysis.Resume != nil {
			out.Sweep.ResumedFromRank = a.Analysis.Resume.FromRank
		}
	}
	if a.Artifact != nil {
		out.Artifact = &ArtifactSummary{
			Path:      a.Artifact.Path,
			ModelHash: a.Artifact.ModelHash,
			Touched:   a.Artifact.Touched,
			Affected:  a.Artifact.Affected,
		}
	}
	if a.Analysis != nil && a.Analysis.SolverStats != nil {
		st := a.Analysis.SolverStats
		out.Solver = &SolverSummary{
			Atoms:          st.Atoms,
			GroundRules:    st.GroundRules,
			Vars:           st.Vars,
			Clauses:        st.Clauses,
			Decisions:      st.Decisions,
			Conflicts:      st.Conflicts,
			Propagations:   st.Propagations,
			Restarts:       st.Restarts,
			LearnedClauses: st.LearnedClauses,
			Backjumps:      st.Backjumps,
			DBReductions:   st.DBReductions,
			DurationMS:     st.Duration.Milliseconds(),

			Sessions:          st.Sessions,
			Queries:           st.Queries,
			Adds:              st.Adds,
			GroundAtomsReused: st.GroundAtomsReused,
			LearnedReused:     st.LearnedReused,

			PortfolioWorkers: st.PortfolioWorkers,
			PortfolioWins:    st.PortfolioWins,
			ClausesExported:  st.ClausesExported,
			ClausesImported:  st.ClausesImported,
			ExchangeDrops:    st.ExchangeDrops,
		}
	}
	out.DurationMS = a.Duration.Milliseconds()
	out.Trace = a.Trace
	out.Metrics = a.Metrics
	return out
}

// WriteJSON writes the summary as indented JSON.
func (a *Assessment) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a.Summarize())
}
