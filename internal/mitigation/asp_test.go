package mitigation_test

import (
	"sort"
	"strings"
	"testing"

	"cpsrisk/internal/faults"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/logic"
	"cpsrisk/internal/mitigation"
	"cpsrisk/internal/solver"
	"cpsrisk/internal/watertank"
)

// potentialFaultsViaASP solves the Listing 1 encoding and extracts the
// potential_fault atoms.
func potentialFaultsViaASP(t *testing.T, k *kb.KB, muts []faults.Mutation, selected map[string]bool) []string {
	t.Helper()
	prog := &logic.Program{}
	if err := mitigation.EncodeASP(prog, k, muts, selected); err != nil {
		t.Fatal(err)
	}
	res, err := solver.SolveProgram(prog, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 1 {
		t.Fatalf("deterministic program has %d models", len(res.Models))
	}
	var out []string
	for _, a := range res.Models[0].WithPredicate("potential_fault") {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// TestListing1ASPAgreesWithFilter: the ASP semantics of the paper's
// Listing 1 and the native Filter agree on the case-study candidates for
// every subset of the relevant mitigations.
func TestListing1ASPAgreesWithFilter(t *testing.T) {
	k := kb.MustDefaultKB()
	muts := watertank.PaperCandidates()
	relevant := mitigation.Relevant(k, muts)
	n := len(relevant)
	if n == 0 || n > 6 {
		t.Fatalf("relevant mitigations = %d", n)
	}
	for mask := 0; mask < 1<<uint(n); mask++ {
		selected := map[string]bool{}
		for i := 0; i < n; i++ {
			if mask>>uint(i)&1 == 1 {
				selected[relevant[i].ID] = true
			}
		}
		var native []string
		for _, mut := range mitigation.Filter(k, muts, selected) {
			native = append(native, logic.A("potential_fault",
				logic.Sym(mut.Component), logic.Sym(mut.Fault)).Key())
		}
		sort.Strings(native)
		asp := potentialFaultsViaASP(t, k, muts, selected)
		if strings.Join(native, "|") != strings.Join(asp, "|") {
			t.Fatalf("mask %b: native %v vs asp %v", mask, native, asp)
		}
	}
}

// The combined encoding restricts the exhaustive scenario search exactly
// like filtering the candidates natively.
func TestPotentialChoiceScenarioCount(t *testing.T) {
	k := kb.MustDefaultKB()
	muts := watertank.PaperCandidates()
	selected := map[string]bool{"M-0917": true, "M-0949": true} // blocks F4

	prog := &logic.Program{}
	if err := mitigation.EncodeASP(prog, k, muts, selected); err != nil {
		t.Fatal(err)
	}
	mitigation.EncodePotentialChoice(prog, -1)
	res, err := solver.SolveProgram(prog, solver.Options{})
	if err != nil {
		t.Fatal(err)
	}
	remaining := mitigation.Filter(k, muts, selected)
	want, _ := faults.SpaceSize(len(remaining), -1)
	if int64(len(res.Models)) != want {
		t.Fatalf("ASP scenarios = %d, want %d", len(res.Models), want)
	}
	for _, m := range res.Models {
		for _, a := range m.WithPredicate("active") {
			if !strings.HasPrefix(a, "active_mitigation") && strings.Contains(a, "ews") {
				t.Fatalf("mitigated F4 activated: %v", m.Atoms)
			}
		}
	}
}
