package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestRunOnSampleModel(t *testing.T) {
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-optimize",
		"-maxcard", "1",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunWithMitigations(t *testing.T) {
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-mitigations", "M-0917,M-0949,M-0932",
		"-maxcard", "1",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingArgs(t *testing.T) {
	if err := run(nil, io.Discard); err == nil || !strings.Contains(err.Error(), "required") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunMissingFiles(t *testing.T) {
	if err := run([]string{"-model", "nope.json", "-types", "nope.json"}, io.Discard); err == nil {
		t.Fatal("expected file error")
	}
}

func TestRunJSONAndDot(t *testing.T) {
	dot := t.TempDir() + "/model.dot"
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "1",
		"-json",
		"-dot", dot,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Errorf("dot output = %q", data)
	}
}

// rankedCount counts data rows ("<rank> S<id> ...") in the
// "Risk-prioritized scenarios" table.
func rankedCount(out string) int {
	_, tail, ok := strings.Cut(out, "== Risk-prioritized scenarios ==")
	if !ok {
		return -1
	}
	n := 0
	for _, line := range strings.Split(tail, "\n") {
		f := strings.Fields(line)
		if len(f) < 2 || !strings.HasPrefix(f[1], "S") {
			continue
		}
		if _, err := strconv.Atoi(f[0]); err == nil {
			n++
		}
	}
	return n
}

func TestRunTopFlagLimitsRanking(t *testing.T) {
	base := []string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "2",
	}
	var all, top5 bytes.Buffer
	if err := run(append(base, "-top", "0"), &all); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-top", "5"), &top5); err != nil {
		t.Fatal(err)
	}
	nAll, n5 := rankedCount(all.String()), rankedCount(top5.String())
	if n5 != 5 {
		t.Errorf("-top 5 printed %d scenarios", n5)
	}
	if nAll <= 20 {
		t.Fatalf("fixture too small to exercise -top 0: %d scenarios", nAll)
	}
}

func TestRunTimeoutDegradesGracefully(t *testing.T) {
	const timeout = 50 * time.Millisecond
	var out bytes.Buffer
	start := time.Now()
	// The decision cap guarantees the ASP search is interrupted even on a
	// machine fast enough to finish inside the deadline; the deadline
	// bounds the wall clock either way.
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "-1",
		"-asp",
		"-timeout", timeout.String(),
		"-max-decisions", "50",
	}, &out)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	// ~2x the deadline plus scheduling slack: budget polls sit between
	// units of work, not inside them.
	if elapsed > 2*timeout+2*time.Second {
		t.Errorf("run took %v with -timeout %v", elapsed, timeout)
	}
	text := out.String()
	if !strings.Contains(text, "== Degraded results ==") {
		t.Fatalf("no degradation summary in output:\n%s", text)
	}
	// The completed ranked scenarios must still be reported.
	if !strings.Contains(text, "== Risk-prioritized scenarios ==") {
		t.Error("ranked scenarios missing from degraded output")
	}
}

func TestRunJSONCarriesSolverStatsAndDegradation(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "1",
		"-asp",
		"-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Solver *struct {
			Decisions  int64 `json:"decisions"`
			Restarts   int64 `json:"restarts"`
			DurationMS int64 `json:"durationMs"`
			Sessions   int64 `json:"sessions"`
			Queries    int64 `json:"queries"`
		} `json:"solver"`
		Degradation []struct {
			Stage  string `json:"stage"`
			Reason string `json:"reason"`
		} `json:"degradation"`
	}
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Solver == nil {
		t.Fatal("no solver stats in -asp -json output")
	}
	if sum.Solver.Decisions <= 0 {
		t.Errorf("solver stats = %+v", sum.Solver)
	}
	// The ASP path is multi-shot: one session answering one query per
	// cardinality level (0 and 1 with -maxcard 1).
	if sum.Solver.Sessions != 1 || sum.Solver.Queries != 2 {
		t.Errorf("multi-shot counters sessions=%d queries=%d, want 1/2", sum.Solver.Sessions, sum.Solver.Queries)
	}
	// The CDCL counters must be present as JSON keys even when zero for
	// this small model.
	for _, key := range []string{`"learnedClauses"`, `"backjumps"`, `"dbReductions"`, `"restarts"`} {
		if !bytes.Contains(out.Bytes(), []byte(key)) {
			t.Errorf("solver summary missing %s key:\n%s", key, out.String())
		}
	}
	if len(sum.Degradation) != 0 {
		t.Errorf("unexpected degradation: %+v", sum.Degradation)
	}

	// A scenario cap must surface in the JSON degradation list.
	out.Reset()
	err = run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "2",
		"-max-scenarios", "3",
		"-json",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Degradation) == 0 {
		t.Fatal("scenario cap not reported in JSON degradation")
	}
	if sum.Degradation[0].Reason != "scenario-cap" {
		t.Errorf("degradation = %+v", sum.Degradation)
	}
}

// stripTiming removes the report lines that carry wall-clock numbers so
// the rest can be compared byte for byte.
func stripTiming(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "sweep:") || strings.Contains(line, "assessed in") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

func TestRunSolverDetIsByteIdentical(t *testing.T) {
	base := []string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "1",
		"-asp",
	}
	var single, det bytes.Buffer
	if err := run(append(base, "-solver-workers", "1"), &single); err != nil {
		t.Fatal(err)
	}
	// -solver-det must collapse a 4-engine request back to the exact
	// single-engine code path: same decisions, conflicts, and models, so
	// the whole report matches byte for byte once timing lines are gone.
	if err := run(append(base, "-solver-workers", "4", "-solver-det"), &det); err != nil {
		t.Fatal(err)
	}
	if stripTiming(single.String()) != stripTiming(det.String()) {
		t.Error("-solver-workers 4 -solver-det output differs from -solver-workers 1")
	}
}

func TestRunSolverWorkersCarriesPortfolioStats(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "1",
		"-asp",
		"-json",
		"-parallel", "4",
		"-solver-workers", "3",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Solver *struct {
			Queries          int64 `json:"queries"`
			PortfolioWorkers int64 `json:"portfolioWorkers"`
		} `json:"solver"`
	}
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Solver == nil {
		t.Fatal("no solver stats in -asp -json output")
	}
	// Two queries (cardinality 0 and 1), two helpers each: the governor
	// has 4 slots, so every helper launch is granted.
	if sum.Solver.PortfolioWorkers != 2*sum.Solver.Queries {
		t.Errorf("portfolioWorkers = %d with %d queries, want %d",
			sum.Solver.PortfolioWorkers, sum.Solver.Queries, 2*sum.Solver.Queries)
	}
}

func TestRunParallelFlagIsDeterministic(t *testing.T) {
	base := []string{
		"-model", "../../models/sme-plant.json",
		"-types", "../../models/types.json",
		"-maxcard", "2",
	}
	var seq, par bytes.Buffer
	if err := run(append(base, "-parallel", "1"), &seq); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-parallel", "4"), &par); err != nil {
		t.Fatal(err)
	}
	// Strip the throughput and duration lines: they carry wall-clock
	// numbers.
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "sweep:") || strings.Contains(line, "assessed in") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(seq.String()) != strip(par.String()) {
		t.Error("-parallel 4 output differs from -parallel 1")
	}

	var out bytes.Buffer
	if err := run(append(base, "-parallel", "4", "-json"), &out); err != nil {
		t.Fatal(err)
	}
	var sum struct {
		Sweep *struct {
			Workers   int `json:"workers"`
			Scenarios int `json:"scenarios"`
		} `json:"sweep"`
	}
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Sweep == nil || sum.Sweep.Workers != 4 || sum.Sweep.Scenarios == 0 {
		t.Errorf("sweep stats = %+v", sum.Sweep)
	}
}
