package sysmodel

import "sort"

// Graph is the component-level propagation view of a model: signal flows
// induce directed edges, shared-quantity flows induce edges in both
// directions (errors in a conserved quantity propagate to every sharer).
type Graph struct {
	succ map[string][]string
	pred map[string][]string
	ids  []string
}

// BuildGraph derives the propagation graph of the model.
func (m *Model) BuildGraph() *Graph {
	g := &Graph{
		succ: make(map[string][]string, len(m.Components)),
		pred: make(map[string][]string, len(m.Components)),
	}
	for _, c := range m.Components {
		g.ids = append(g.ids, c.ID)
	}
	sort.Strings(g.ids)
	add := func(from, to string) {
		g.succ[from] = appendUnique(g.succ[from], to)
		g.pred[to] = appendUnique(g.pred[to], from)
	}
	for _, conn := range m.Connections {
		add(conn.From.Component, conn.To.Component)
		if conn.Flow == QuantityFlow {
			add(conn.To.Component, conn.From.Component)
		}
	}
	return g
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// IDs returns the node IDs, sorted.
func (g *Graph) IDs() []string {
	out := make([]string, len(g.ids))
	copy(out, g.ids)
	return out
}

// Successors returns the direct propagation successors of id, sorted.
func (g *Graph) Successors(id string) []string {
	out := append([]string(nil), g.succ[id]...)
	sort.Strings(out)
	return out
}

// Predecessors returns the direct propagation predecessors of id, sorted.
func (g *Graph) Predecessors(id string) []string {
	out := append([]string(nil), g.pred[id]...)
	sort.Strings(out)
	return out
}

// Reachable returns every node reachable from the seeds (including the
// seeds themselves), sorted.
func (g *Graph) Reachable(seeds ...string) []string {
	seen := map[string]bool{}
	queue := append([]string(nil), seeds...)
	for _, s := range seeds {
		seen[s] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range g.succ[cur] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// HasCycle reports whether the directed propagation graph has a cycle
// (physical quantity loops always do; the EPA fixpoint must therefore be
// cycle-safe).
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) bool
	visit = func(n string) bool {
		color[n] = gray
		for _, s := range g.succ[n] {
			switch color[s] {
			case gray:
				return true
			case white:
				if visit(s) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for _, id := range g.ids {
		if color[id] == white && visit(id) {
			return true
		}
	}
	return false
}

// ShortestPath returns a shortest hop path from one node to another, or
// nil if unreachable.
func (g *Graph) ShortestPath(from, to string) []string {
	if from == to {
		return []string{from}
	}
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range g.succ[cur] {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			if next == to {
				var path []string
				for n := to; n != from; n = prev[n] {
					path = append(path, n)
				}
				path = append(path, from)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, next)
		}
	}
	return nil
}
