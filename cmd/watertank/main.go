// Command watertank runs the paper's §VII case study end to end: the
// exhaustive qualitative analysis of the water-tank system under fault
// modes F1..F4 (Table II), the risk-prioritized scenario ranking, the
// CEGAR validation of the findings against the concrete plant simulator,
// and the mitigation cost-benefit plan.
package main

import (
	"flag"
	"fmt"
	"os"

	"cpsrisk/internal/cegar"
	"cpsrisk/internal/core"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/report"
	"cpsrisk/internal/watertank"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "watertank:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("watertank", flag.ContinueOnError)
	useASP := fs.Bool("asp", false, "run hazard identification through the ASP engine")
	budget := fs.Int("budget", -1, "mitigation budget (-1 = unlimited)")
	noCEGAR := fs.Bool("nocegar", false, "skip the plant-oracle validation")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Println("== Paper Table II: analysis results ==")
	table, err := watertank.PaperTableII(*useASP)
	if err != nil {
		return err
	}
	fmt.Println(table)

	types := watertank.Types()
	cfg := core.Config{
		Model:           watertank.Model(),
		Types:           types,
		Behaviors:       watertank.Behaviors(types),
		KB:              kb.MustDefaultKB(),
		Requirements:    watertank.Requirements(),
		ExtraMutations:  watertank.PaperCandidates(),
		MutationSources: faults.Options{},
		MaxCardinality:  -1,
		UseASP:          *useASP,
		Optimize:        true,
		Budget:          *budget,
	}
	if !*noCEGAR {
		cfg.Oracle = cegar.NewPlantOracle()
	}
	a, err := core.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Println("== Risk-prioritized scenarios ==")
	fmt.Println(report.Ranked(a.Ranked))

	if a.Refinement != nil {
		fmt.Println("== CEGAR validation against the plant simulator ==")
		for _, j := range a.Refinement.Findings {
			fmt.Printf("  %-40s %s\n", j.Finding.String(), j.Verdict)
		}
		fmt.Printf("confirmed=%d spurious=%d undetermined=%d\n\n",
			len(a.Refinement.Confirmed()), len(a.Refinement.Spurious()),
			len(a.Refinement.Undetermined()))
	}

	fmt.Println("== Mitigation cost-benefit plan ==")
	fmt.Println(report.Plan(a.Phases, a.Plan))
	return nil
}
