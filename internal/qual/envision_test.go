package qual

import "testing"

func TestEnvisionReachability(t *testing.T) {
	s := FiveLevel()
	// From a steady middle state, everything is eventually reachable.
	e := Envision(s, []State{{Magnitude: Medium, Trend: SignZero}})
	if !e.Reachable(VeryHigh) || !e.Reachable(VeryLow) {
		t.Error("extremes must be reachable from a steady middle state")
	}
	// 5 magnitudes x 3 definite trends (unknown not generated from definite
	// trends) = 15 states.
	if got := len(e.States()); got != 15 {
		t.Errorf("states = %d, want 15", got)
	}
}

func TestEnvisionPathContinuity(t *testing.T) {
	s := FiveLevel()
	e := Envision(s, []State{{Magnitude: VeryLow, Trend: SignPos}})
	path := e.PathTo(VeryHigh)
	if path == nil {
		t.Fatal("no path to overflow")
	}
	if path[0] != (State{Magnitude: VeryLow, Trend: SignPos}) {
		t.Errorf("path start = %v", path[0])
	}
	for i := 1; i < len(path); i++ {
		prev, cur := path[i-1], path[i]
		// Magnitude moves at most one region per step.
		if d := s.Distance(prev.Magnitude, cur.Magnitude); d > 1 {
			t.Errorf("magnitude jump at %d: %v -> %v", i, prev, cur)
		}
		// Trend sign changes pass through zero.
		if prev.Trend == SignPos && cur.Trend == SignNeg ||
			prev.Trend == SignNeg && cur.Trend == SignPos {
			t.Errorf("trend discontinuity at %d: %v -> %v", i, prev, cur)
		}
	}
	// The shortest rising path is monotone: 5 magnitudes = at least 5
	// states.
	if len(path) < 5 {
		t.Errorf("path too short: %v", path)
	}
}

func TestEnvisionPathUnreachable(t *testing.T) {
	s := FiveLevel()
	// A constrained envisionment that forbids leaving the bottom region.
	e := Envision(s, []State{{Magnitude: VeryLow, Trend: SignZero}}).
		Constrain(func(st State) bool { return st.Magnitude == VeryLow })
	if e.PathTo(VeryHigh) != nil {
		t.Error("constrained envisionment must not reach the top")
	}
	if !e.Reachable(VeryLow) {
		t.Error("bottom region must remain")
	}
}

// The controller-knowledge constraint of the case study: above the high
// mark the trend cannot stay positive (the output valve drains). Overflow
// becomes unreachable — the qualitative counterpart of the healthy
// control loop.
func TestEnvisionControlledTankSafe(t *testing.T) {
	space := MustQuantitySpace("level",
		[]float64{0.1, 0.3, 0.7, 0.9},
		[]string{"empty", "low", "normal", "high", "overflow"})
	s := space.Scale()
	high := s.MustParse("high")
	overflow := s.MustParse("overflow")
	start := State{Magnitude: s.MustParse("normal"), Trend: SignZero}

	uncontrolled := Envision(s, []State{start})
	if !uncontrolled.Reachable(overflow) {
		t.Fatal("uncontrolled tank must be able to overflow")
	}
	controlled := uncontrolled.Constrain(func(st State) bool {
		// The controller forbids a rising level at or above "high".
		return !(st.Magnitude >= high && st.Trend == SignPos)
	})
	if controlled.Reachable(overflow) {
		t.Error("controlled tank must not overflow qualitatively")
	}
	if !controlled.Reachable(s.MustParse("empty")) {
		t.Error("draining must stay possible")
	}
}

func TestConstrainDropsInitialStates(t *testing.T) {
	s := FiveLevel()
	e := Envision(s, []State{{Magnitude: Medium, Trend: SignZero}}).
		Constrain(func(st State) bool { return st.Magnitude != Medium })
	if len(e.States()) != 0 {
		t.Errorf("filtered-out init must yield an empty envisionment, got %v", e.States())
	}
}

func BenchmarkEnvision(b *testing.B) {
	labels := make([]string, 12)
	for i := range labels {
		labels[i] = string(rune('a' + i))
	}
	s := MustScale("wide", labels...)
	init := []State{{Magnitude: 0, Trend: SignPos}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := Envision(s, init)
		if !e.Reachable(s.Max()) {
			b.Fatal("unreachable")
		}
	}
}
