package solver

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"cpsrisk/internal/logic"
)

// TestDifferentialCDCLvsBruteForce cross-checks the CDCL pipeline against
// a brute-force stable-model enumerator on randomly generated small
// programs covering facts, normal rules with negation, integrity
// constraints, and choice rules (plus a first-order template so the
// grounder join/dedup path is exercised too). The generator is seeded,
// so every run checks the same program battery.
func TestDifferentialCDCLvsBruteForce(t *testing.T) {
	const programs = 600
	const maxBruteAtoms = 14

	rng := rand.New(rand.NewSource(20260806))
	checked := 0
	for i := 0; i < programs; i++ {
		src := randomDiffProgram(rng, i)
		prog, err := logic.Parse(src)
		if err != nil {
			t.Fatalf("program %d: generated unparsable source:\n%s\n%v", i, src, err)
		}
		gp, err := Ground(prog)
		if err != nil {
			t.Fatalf("program %d: ground: %v\n%s", i, err, src)
		}
		if gp.NumAtoms() > maxBruteAtoms {
			t.Fatalf("program %d: %d ground atoms exceeds brute-force budget:\n%s", i, gp.NumAtoms(), src)
		}
		res, err := Solve(gp, Options{})
		if err != nil {
			t.Fatalf("program %d: solve: %v\n%s", i, err, src)
		}
		got := renderModelSet(res.Models)
		want := bruteForceModels(gp)
		if !equalStringSets(got, want) {
			t.Fatalf("program %d: answer sets disagree\nprogram:\n%s\nCDCL (%d): %v\nbrute force (%d): %v",
				i, src, len(got), got, len(want), want)
		}
		checked++
	}
	if checked < 500 {
		t.Fatalf("only %d programs checked, want >= 500", checked)
	}
}

// renderModelSet renders each model as its sorted atom list joined by
// commas, sorted overall for set comparison.
func renderModelSet(models []Model) []string {
	out := make([]string, 0, len(models))
	for _, m := range models {
		out = append(out, strings.Join(m.Atoms, ","))
	}
	sort.Strings(out)
	return out
}

func equalStringSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bruteForceModels enumerates every truth assignment over all ground
// atoms (internal ones included) and keeps the stable ones, rendered
// like renderModelSet.
func bruteForceModels(gp *GroundProgram) []string {
	n := gp.NumAtoms()
	truth := make([]bool, n+1)
	derived := make([]bool, n+1)
	var out []string
	for mask := 0; mask < 1<<n; mask++ {
		for id := 1; id <= n; id++ {
			truth[id] = mask&(1<<(id-1)) != 0
		}
		if !isStableTruth(gp, truth, derived) {
			continue
		}
		atoms := make([]string, 0, n)
		for id := AtomID(1); id <= AtomID(n); id++ {
			if truth[id] && !gp.IsInternal(id) {
				atoms = append(atoms, gp.AtomName(id))
			}
		}
		sort.Strings(atoms)
		out = append(out, strings.Join(atoms, ","))
	}
	sort.Strings(out)
	// Distinct truth assignments can project to the same visible model
	// only through internal atoms, which are functionally determined —
	// no dedup needed; keep duplicates so a solver bug that splits a
	// model would be caught as a count mismatch.
	return out
}

// isStableTruth checks the stable-model conditions for a full truth
// assignment: no firing constraint, choice bounds respected, and the
// least model of the reduct equal to the assignment. derived is caller
// scratch of size NumAtoms+1.
func isStableTruth(gp *GroundProgram, truth, derived []bool) bool {
	bodyHolds := func(pos, neg []AtomID) bool {
		for _, p := range pos {
			if !truth[p] {
				return false
			}
		}
		for _, x := range neg {
			if truth[x] {
				return false
			}
		}
		return true
	}
	for _, r := range gp.Rules {
		switch r.Kind {
		case KindBasic:
			if r.Head == 0 && bodyHolds(r.Pos, r.Neg) {
				return false // constraint fires
			}
		case KindChoice:
			if !bodyHolds(r.Pos, r.Neg) {
				continue
			}
			count := 0
			for i, h := range r.Heads {
				if (r.Conds[i] == 0 || truth[r.Conds[i]]) && truth[h] {
					count++
				}
			}
			if r.Lower != logic.Unbounded && count < r.Lower {
				return false
			}
			if r.Upper != logic.Unbounded && count > r.Upper {
				return false
			}
		}
	}

	// Least model of the reduct w.r.t. truth.
	for i := range derived {
		derived[i] = false
	}
	for changed := true; changed; {
		changed = false
		for _, r := range gp.Rules {
			negOK := true
			for _, x := range r.Neg {
				if truth[x] {
					negOK = false
					break
				}
			}
			if !negOK {
				continue
			}
			posOK := true
			for _, p := range r.Pos {
				if !derived[p] {
					posOK = false
					break
				}
			}
			if !posOK {
				continue
			}
			switch r.Kind {
			case KindBasic:
				if r.Head != 0 && !derived[r.Head] {
					derived[r.Head] = true
					changed = true
				}
			case KindChoice:
				for i, h := range r.Heads {
					condOK := r.Conds[i] == 0 || derived[r.Conds[i]]
					if condOK && truth[h] && !derived[h] {
						derived[h] = true
						changed = true
					}
				}
			}
		}
	}
	for id := 1; id <= gp.NumAtoms(); id++ {
		if truth[id] != derived[id] {
			return false
		}
	}
	return true
}

// randomProgram generates one small random program. Three out of four
// programs are propositional over a 5-atom pool; every fourth uses a
// first-order template over a tiny domain so variable joins, arithmetic
// and choice-element conditions go through the grounder.
func randomDiffProgram(rng *rand.Rand, i int) string {
	if i%4 == 3 {
		return randomFirstOrderProgram(rng)
	}
	atoms := []string{"a", "b", "c", "d", "e"}
	pick := func() string { return atoms[rng.Intn(len(atoms))] }
	var sb strings.Builder

	// Facts.
	for k := rng.Intn(3); k > 0; k-- {
		fmt.Fprintf(&sb, "%s.\n", pick())
	}
	// Normal rules: head :- [pos...], [not neg...].
	for k := 1 + rng.Intn(4); k > 0; k-- {
		head := pick()
		var body []string
		for p := rng.Intn(3); p > 0; p-- {
			body = append(body, pick())
		}
		for nn := rng.Intn(3); nn > 0; nn-- {
			body = append(body, "not "+pick())
		}
		if len(body) == 0 {
			fmt.Fprintf(&sb, "%s.\n", head)
			continue
		}
		fmt.Fprintf(&sb, "%s :- %s.\n", head, strings.Join(body, ", "))
	}
	// Choice rule with optional bounds and optional body.
	if rng.Intn(2) == 0 {
		h1, h2 := pick(), pick()
		elems := h1
		if h2 != h1 {
			elems = h1 + "; " + h2
		}
		lower, upper := "", ""
		if rng.Intn(2) == 0 {
			lower = fmt.Sprintf("%d ", rng.Intn(2))
		}
		if rng.Intn(2) == 0 {
			upper = fmt.Sprintf(" %d", 1+rng.Intn(2))
		}
		body := ""
		if rng.Intn(3) == 0 {
			body = " :- not " + pick()
		}
		fmt.Fprintf(&sb, "%s{ %s }%s%s.\n", lower, elems, upper, body)
	}
	// Constraint.
	if rng.Intn(2) == 0 {
		var body []string
		for p := 1 + rng.Intn(2); p > 0; p-- {
			if rng.Intn(2) == 0 {
				body = append(body, "not "+pick())
			} else {
				body = append(body, pick())
			}
		}
		fmt.Fprintf(&sb, ":- %s.\n", strings.Join(body, ", "))
	}
	return sb.String()
}

// randomFirstOrderProgram builds a template instance over a domain of
// 2-3 elements: a choice over the domain, a derived predicate with
// negation, sometimes arithmetic or a constraint.
func randomFirstOrderProgram(rng *rand.Rand) string {
	n := 2 + rng.Intn(2)
	var sb strings.Builder
	fmt.Fprintf(&sb, "d(1..%d).\n", n)
	fmt.Fprintf(&sb, "{ pick(X) : d(X) }.\n")
	switch rng.Intn(3) {
	case 0:
		sb.WriteString("q(X) :- d(X), not pick(X).\n")
	case 1:
		fmt.Fprintf(&sb, "q(X) :- pick(X), X < %d.\n", n)
	default:
		sb.WriteString("q(Y) :- pick(X), Y = X + 1, d(Y).\n")
	}
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&sb, ":- pick(%d).\n", 1+rng.Intn(n))
	}
	if rng.Intn(2) == 0 {
		sb.WriteString(":- not pick(1), not q(1).\n")
	}
	return sb.String()
}

// TestDifferentialIncrementalVsSingleShot cross-checks multi-shot
// Sessions against fresh single-shot solves: each seeded program is split
// into a random base plus 1-3 deltas, fed to one Session through
// Add/SolveAssuming sequences with randomized atom assumptions, and after
// every step the answer sets must match a single-shot SolveProgram call
// on the equivalent flattened program (assumptions encoded as integrity
// constraints: a=true ≡ ":- not a."; a=false ≡ ":- a."). This drives all
// three Add classifications — constraints-only, fresh-heads, and the
// retraction/rebuild slow path via choice-element growth — plus query
// guard retirement (every step queries twice).
func TestDifferentialIncrementalVsSingleShot(t *testing.T) {
	const programs = 300

	rng := rand.New(rand.NewSource(20260807))
	checked := 0
	for i := 0; i < programs; i++ {
		src := randomDiffProgram(rng, i)
		prog, err := logic.Parse(src)
		if err != nil {
			t.Fatalf("program %d: generated unparsable source:\n%s\n%v", i, src, err)
		}
		atomPool := []string{"a", "b", "c", "d", "e"}
		if i%4 == 3 {
			atomPool = []string{"pick(1)", "pick(2)", "q(1)", "q(2)"}
		}

		// Random partition of the rules into base + deltas. Per-rule
		// safety means every partition is itself a valid program.
		chunks := make([]*logic.Program, 1+1+rng.Intn(3))
		for c := range chunks {
			chunks[c] = &logic.Program{}
		}
		for _, r := range prog.Rules {
			chunks[rng.Intn(len(chunks))].AddRule(r)
		}

		sess, err := NewSession(chunks[0], Options{})
		if err != nil {
			t.Fatalf("program %d: NewSession: %v\n%s", i, err, src)
		}
		flat := &logic.Program{}
		flat.Extend(chunks[0])
		for step := 1; ; step++ {
			var assumps []Assumption
			var constraints []logic.Rule
			for n := rng.Intn(3); n > 0; n-- {
				atom := atomPool[rng.Intn(len(atomPool))]
				var csrc string
				if rng.Intn(2) == 0 {
					assumps = append(assumps, AssumeTrue(atom))
					csrc = ":- not " + atom + "."
				} else {
					assumps = append(assumps, AssumeFalse(atom))
					csrc = ":- " + atom + "."
				}
				cprog, err := logic.Parse(csrc)
				if err != nil {
					t.Fatalf("program %d: parse constraint %q: %v", i, csrc, err)
				}
				constraints = append(constraints, cprog.Rules...)
			}
			want := solveFlattened(t, i, flat, constraints)
			for q := 0; q < 2; q++ { // twice: exercises guard retirement
				res, err := sess.SolveAssuming(assumps, Options{})
				if err != nil {
					t.Fatalf("program %d step %d: SolveAssuming: %v\n%s", i, step, err, src)
				}
				got := renderModelSet(res.Models)
				if !equalStringSets(got, want) {
					t.Fatalf("program %d step %d query %d: answer sets disagree\nprogram:\n%s\nbase+deltas:\n%s\nassumptions: %v\nsession (%d): %v\nsingle-shot (%d): %v",
						i, step, q, src, flat, assumps, len(got), got, len(want), want)
				}
				if res.Satisfiable != (len(want) > 0) {
					t.Fatalf("program %d step %d: Satisfiable=%v, want %v", i, step, res.Satisfiable, len(want) > 0)
				}
			}
			if step >= len(chunks) {
				break
			}
			if err := sess.Add(chunks[step]); err != nil {
				t.Fatalf("program %d step %d: Add: %v\n%s", i, step, err, src)
			}
			flat.Extend(chunks[step])
		}
		sess.Close()
		checked++
	}
	if checked < 250 {
		t.Fatalf("only %d programs checked, want >= 250", checked)
	}
}

// solveFlattened single-shot-solves base plus assumption constraints.
func solveFlattened(t *testing.T, i int, base *logic.Program, constraints []logic.Rule) []string {
	t.Helper()
	full := &logic.Program{}
	full.Extend(base)
	for _, c := range constraints {
		full.AddRule(c)
	}
	res, err := SolveProgram(full, Options{})
	if err != nil {
		t.Fatalf("program %d: single-shot solve: %v", i, err)
	}
	return renderModelSet(res.Models)
}
