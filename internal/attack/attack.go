// Package attack implements scenario identification from the cybersecurity
// perspective (paper §IV-A): building the logical attack-scenario space
// over the topological model. Assets × applicable techniques form an
// attack graph; entry steps need public exposure, lateral steps need an
// already compromised neighbor; impact steps activate component fault
// modes. The graph yields the compromisable-asset set, attack paths,
// cheapest attacks (the "attack cost" optimization input of §IV-D), and
// the attacker-induced candidate mutations.
package attack

import (
	"container/heap"
	"fmt"
	"sort"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/kb"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/sysmodel"
)

// FaultCompromised is the fault mode marking attacker control; techniques
// activating it extend the attacker's foothold, all others are impacts.
const FaultCompromised = "compromised"

// Step is one attack-graph edge: a technique applied to an asset, entered
// either from outside (From == "") or from a compromised neighbor.
type Step struct {
	Asset     string
	Technique *kb.Technique
	// From is the compromised neighbor enabling an adjacent technique, or
	// "" for an entry step on a publicly exposed asset.
	From string
	// Cost is the numeric attacker effort (1..5 from the technique's
	// qualitative AttackCost).
	Cost int
}

// String implements fmt.Stringer.
func (s Step) String() string {
	from := "internet"
	if s.From != "" {
		from = s.From
	}
	return fmt.Sprintf("%s -[%s]-> %s", from, s.Technique.ID, s.Asset)
}

// Graph is the attack-scenario space of a model.
type Graph struct {
	model *sysmodel.Model
	// entries[asset] lists entry steps on the asset.
	entries map[string][]Step
	// lateral[neighbor] lists steps enabled by that neighbor being
	// compromised.
	lateral map[string][]Step
	// adjacency is the undirected connectivity used for lateral movement.
	adjacency map[string][]string
}

// Options configures graph construction.
type Options struct {
	// ActiveMitigations marks deployed mitigations by ID: a technique is
	// blocked when any of its listed mitigations is active (the paper's
	// blocking semantics — M1 blocks the spearphishing link step).
	ActiveMitigations map[string]bool
}

// Build constructs the attack graph of a flat model against the KB.
func Build(m *sysmodel.Model, lib *sysmodel.TypeLibrary, k *kb.KB, opt Options) (*Graph, error) {
	if comps := m.Composites(); len(comps) > 0 {
		return nil, fmt.Errorf("attack: model has unresolved composites %v", comps)
	}
	g := &Graph{
		model:     m,
		entries:   map[string][]Step{},
		lateral:   map[string][]Step{},
		adjacency: map[string][]string{},
	}
	for _, conn := range m.Connections {
		a, b := conn.From.Component, conn.To.Component
		g.adjacency[a] = appendUnique(g.adjacency[a], b)
		g.adjacency[b] = appendUnique(g.adjacency[b], a)
	}
	blocked := func(t *kb.Technique) bool {
		for _, mid := range t.Mitigations {
			if opt.ActiveMitigations[mid] {
				return true
			}
		}
		return false
	}
	five := qual.FiveLevel()
	for _, c := range m.Components {
		if _, ok := lib.Get(c.Type); !ok {
			return nil, fmt.Errorf("attack: component %q has unknown type %q", c.ID, c.Type)
		}
		for _, t := range k.TechniquesFor(c.Type) {
			if t.FaultMode == "" || blocked(t) {
				continue
			}
			cost := 3
			if t.AttackCost != "" {
				l, err := five.Parse(t.AttackCost)
				if err != nil {
					return nil, fmt.Errorf("attack: technique %s: %w", t.ID, err)
				}
				cost = int(l) + 1
			}
			switch t.RequiresExposure {
			case "public":
				if c.Attr("exposure") == "public" {
					g.entries[c.ID] = append(g.entries[c.ID],
						Step{Asset: c.ID, Technique: t, Cost: cost})
				}
			case "adjacent", "":
				for _, nb := range g.adjacency[c.ID] {
					g.lateral[nb] = append(g.lateral[nb],
						Step{Asset: c.ID, Technique: t, From: nb, Cost: cost})
				}
			}
		}
	}
	return g, nil
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// Compromisable returns the assets the attacker can take control of
// (fixpoint over entry + lateral compromise steps), sorted.
func (g *Graph) Compromisable() []string {
	set := map[string]bool{}
	var queue []string
	push := func(asset string) {
		if !set[asset] {
			set[asset] = true
			queue = append(queue, asset)
		}
	}
	for asset, steps := range g.entries {
		for _, s := range steps {
			if s.Technique.FaultMode == FaultCompromised {
				push(asset)
				break
			}
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, s := range g.lateral[cur] {
			if s.Technique.FaultMode == FaultCompromised {
				push(s.Asset)
			}
		}
	}
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// InducedMutations returns the fault activations the attacker can achieve:
// "compromised" on every compromisable asset plus every impact technique's
// fault mode on assets adjacent to a compromisable one (or publicly
// entered). Likelihoods come from the enabling technique. This is the
// attack contribution to the candidate-mutation set of §IV-A.
func (g *Graph) InducedMutations() []epa.Activation {
	comp := map[string]bool{}
	for _, a := range g.Compromisable() {
		comp[a] = true
	}
	set := map[epa.Activation]bool{}
	for asset := range comp {
		set[epa.Activation{Component: asset, Fault: FaultCompromised}] = true
	}
	for asset, steps := range g.entries {
		for _, s := range steps {
			set[epa.Activation{Component: asset, Fault: s.Technique.FaultMode}] = true
		}
	}
	for neighbor, steps := range g.lateral {
		if !comp[neighbor] {
			continue
		}
		for _, s := range steps {
			set[epa.Activation{Component: s.Asset, Fault: s.Technique.FaultMode}] = true
		}
	}
	out := make([]epa.Activation, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		return out[i].Fault < out[j].Fault
	})
	return out
}

// Attack is a priced attack path ending in a goal step.
type Attack struct {
	Steps []Step
	Cost  int
}

// CheapestAttack finds the minimum-cost attack achieving the fault mode on
// the target asset (Dijkstra over compromised assets; the final step may
// be an impact technique). It returns false when the goal is unreachable.
func (g *Graph) CheapestAttack(target, faultMode string) (Attack, bool) {
	dist := map[string]int{}
	prev := map[string]Step{}
	pq := &stepHeap{}
	heap.Init(pq)

	relax := func(asset string, cost int, via Step) {
		if d, ok := dist[asset]; ok && d <= cost {
			return
		}
		dist[asset] = cost
		prev[asset] = via
		heap.Push(pq, stepHeapItem{asset: asset, cost: cost})
	}
	for asset, steps := range g.entries {
		for _, s := range steps {
			if s.Technique.FaultMode == FaultCompromised {
				relax(asset, s.Cost, s)
			}
		}
	}
	best := Attack{}
	found := false
	consider := func(base int, goal Step) {
		total := base + goal.Cost
		if found && total >= best.Cost {
			return
		}
		var steps []Step
		cur := goal.From
		for cur != "" {
			s := prev[cur]
			steps = append(steps, s)
			cur = s.From
		}
		for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
			steps[i], steps[j] = steps[j], steps[i]
		}
		steps = append(steps, goal)
		best = Attack{Steps: steps, Cost: total}
		found = true
	}
	// Direct entry impacts on the target.
	for _, s := range g.entries[target] {
		if s.Technique.FaultMode == faultMode {
			consider(0, Step{Asset: s.Asset, Technique: s.Technique, Cost: s.Cost})
		}
	}
	settled := map[string]bool{}
	for pq.Len() > 0 {
		st, _ := heap.Pop(pq).(stepHeapItem)
		if settled[st.asset] || st.cost != dist[st.asset] {
			continue
		}
		settled[st.asset] = true
		// Goal checks from this foothold.
		for _, s := range g.lateral[st.asset] {
			if s.Asset == target && s.Technique.FaultMode == faultMode {
				consider(st.cost, s)
			}
			if s.Technique.FaultMode == FaultCompromised {
				relax(s.Asset, st.cost+s.Cost, s)
			}
		}
		if st.asset == target && faultMode == FaultCompromised {
			// The relax chain already reached the goal.
			var steps []Step
			cur := target
			for cur != "" {
				s := prev[cur]
				steps = append(steps, s)
				cur = s.From
			}
			for i, j := 0, len(steps)-1; i < j; i, j = i+1, j-1 {
				steps[i], steps[j] = steps[j], steps[i]
			}
			if !found || st.cost < best.Cost {
				best = Attack{Steps: steps, Cost: st.cost}
				found = true
			}
		}
	}
	return best, found
}

type stepHeapItem struct {
	asset string
	cost  int
}

type stepHeap []stepHeapItem

func (h stepHeap) Len() int           { return len(h) }
func (h stepHeap) Less(i, j int) bool { return h[i].cost < h[j].cost }
func (h stepHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

// Push implements heap.Interface.
func (h *stepHeap) Push(x interface{}) {
	item, ok := x.(stepHeapItem)
	if !ok {
		return
	}
	*h = append(*h, item)
}

// Pop implements heap.Interface.
func (h *stepHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
