package report_test

import (
	"strings"
	"testing"

	"cpsrisk/internal/epa"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/optimize"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/report"
	"cpsrisk/internal/risk"
	"cpsrisk/internal/watertank"
)

func TestTableBasics(t *testing.T) {
	out := report.Table([]string{"A", "Long header"}, [][]string{
		{"x", "y"},
		{"wide cell", "z"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d\n%s", len(lines), out)
	}
	// All rows share the same rendered width.
	if len(lines[0]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Errorf("misaligned:\n%s", out)
	}
}

func TestTableIContents(t *testing.T) {
	out := report.TableI()
	// First data row is LM=VH: M H VH VH VH.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[2], "VH") {
		t.Fatalf("row order: %q", lines[2])
	}
	fields := strings.Fields(lines[2])
	want := []string{"VH", "M", "H", "VH", "VH", "VH"}
	if len(fields) != len(want) {
		t.Fatalf("row = %v", fields)
	}
	for i := range want {
		if fields[i] != want[i] {
			t.Fatalf("TableI row VH = %v, want %v", fields, want)
		}
	}
	// Last data row is LM=VL: VL VL VL L M.
	last := strings.Fields(lines[6])
	wantLast := []string{"VL", "VL", "VL", "VL", "L", "M"}
	for i := range wantLast {
		if last[i] != wantLast[i] {
			t.Fatalf("TableI row VL = %v, want %v", last, wantLast)
		}
	}
}

func tableIIFixtures(t *testing.T) (*hazard.Analysis, []string, []epa.Activation) {
	t.Helper()
	eng, err := watertank.Engine()
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := hazard.Analyze(eng, watertank.PaperCandidates(), -1, watertank.Requirements())
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"F1", "F2", "F3", "F4"}
	acts := make([]epa.Activation, len(labels))
	for i, l := range labels {
		acts[i] = watertank.FaultLabels[l]
	}
	return analysis, labels, acts
}

func TestTableIIPaperLayout(t *testing.T) {
	analysis, labels, acts := tableIIFixtures(t)
	rows := []report.TableIIRow{
		{Label: "S1", Scenario: nil, MitigationsActive: true},
		{Label: "S2", Scenario: epa.Scenario{acts[3]}},
		{Label: "S4", Scenario: epa.Scenario{acts[1]}, MitigationsActive: true},
		{Label: "S5", Scenario: epa.Scenario{acts[1], acts[2]}, MitigationsActive: true},
	}
	out, err := report.TableII(analysis, labels, acts, []string{"M1", "M2"}, rows)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2+len(rows) {
		t.Fatalf("lines:\n%s", out)
	}
	// S2: F4 starred, no mitigations, both violated.
	s2 := lines[3]
	if !strings.Contains(s2, "*") || strings.Contains(s2, "Active") ||
		strings.Count(s2, "Violated") != 2 {
		t.Errorf("S2 row = %q", s2)
	}
	// S4: R1 violated only, mitigations active.
	s4 := lines[4]
	if strings.Count(s4, "Violated") != 1 || !strings.Contains(s4, "Active") {
		t.Errorf("S4 row = %q", s4)
	}
	// S1: nothing violated.
	s1 := lines[2]
	if strings.Contains(s1, "Violated") || strings.Contains(s1, "*") {
		t.Errorf("S1 row = %q", s1)
	}
}

func TestTableIIErrors(t *testing.T) {
	analysis, labels, acts := tableIIFixtures(t)
	if _, err := report.TableII(analysis, labels[:2], acts, nil, nil); err == nil {
		t.Error("label/activation mismatch must fail")
	}
	if _, err := report.TableII(analysis, labels, acts, nil, []report.TableIIRow{
		{Label: "X", Scenario: epa.Scenario{{Component: "ghost", Fault: "f"}}},
	}); err == nil {
		t.Error("unknown scenario must fail")
	}
}

func TestRankedRendering(t *testing.T) {
	analysis, _, _ := tableIIFixtures(t)
	out := report.Ranked(analysis.Ranked())
	if !strings.Contains(out, "Rank") || !strings.Contains(out, "ews:compromised") {
		t.Errorf("ranked output:\n%s", out)
	}
}

func TestDerivationRendering(t *testing.T) {
	d := risk.Derive(risk.Attributes{
		ContactFrequency:    qual.High,
		ProbabilityOfAction: qual.High,
		ThreatCapability:    qual.High,
		ResistanceStrength:  qual.Low,
		PrimaryLoss:         qual.High,
	})
	out := report.Derivation(d)
	for _, want := range []string{"Threat Event Frequency", "Vulnerability", "Loss Magnitude", "Risk"} {
		if !strings.Contains(out, want) {
			t.Errorf("derivation missing %q:\n%s", want, out)
		}
	}
}

func TestPlanRendering(t *testing.T) {
	out := report.Plan(
		[]optimize.Phase{{MitigationID: "M-0917", Cost: 25, LossReduction: 1000}},
		optimize.Plan{Selected: []string{"M-0917"}, Cost: 25, ResidualLoss: 10,
			Total: 35, Blocked: []string{"S2"}},
	)
	for _, want := range []string{"M-0917", "1000", "Residual loss: 10", "Blocked scenarios: S2"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan missing %q:\n%s", want, out)
		}
	}
}
