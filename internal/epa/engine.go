package epa

import (
	"fmt"
	"sort"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/sysmodel"
)

// PortKey addresses one port of one component instance.
type PortKey struct {
	Component string
	Port      string
}

// String implements fmt.Stringer.
func (k PortKey) String() string { return k.Component + "." + k.Port }

// Cause explains how an error mode arrived at a port: through a fault
// activation, a connection from another port, or an intra-component
// transfer.
type Cause struct {
	Kind string // "fault", "connection", "transfer"
	// Fault is set for fault causes.
	Fault Activation
	// From is set for connection and transfer causes: the upstream port
	// and the mode that triggered the rule.
	From     PortKey
	FromMode ErrMode
}

// Result is the outcome of one EPA run.
type Result struct {
	ports  map[PortKey]ErrState
	causes map[causeKey]Cause
	model  *sysmodel.Model
}

type causeKey struct {
	port PortKey
	mode ErrMode
}

// PortState returns the error state of a port.
func (r *Result) PortState(component, port string) ErrState {
	return r.ports[PortKey{Component: component, Port: port}]
}

// ComponentState returns the union of the component's port states.
func (r *Result) ComponentState(component string) ErrState {
	var s ErrState
	for k, st := range r.ports {
		if k.Component == component {
			s = s.Union(st)
		}
	}
	return s
}

// Affected lists components with a non-OK state, sorted.
func (r *Result) Affected() []string {
	set := map[string]bool{}
	for k, st := range r.ports {
		if !st.IsOK() {
			set[k.Component] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// PathStep is one hop of an error-propagation path.
type PathStep struct {
	Port  PortKey
	Mode  ErrMode
	Cause Cause
}

// Path reconstructs the propagation path that brought mode to the port:
// from the originating fault activation down to the queried port (the
// paper's "components' error propagation path", §II-C). Returns nil when
// the mode is absent.
func (r *Result) Path(component, port string, mode ErrMode) []PathStep {
	key := causeKey{port: PortKey{Component: component, Port: port}, mode: mode}
	var rev []PathStep
	for guard := 0; guard < 4*len(r.ports)+4; guard++ {
		cause, ok := r.causes[key]
		if !ok {
			return nil
		}
		rev = append(rev, PathStep{Port: key.port, Mode: key.mode, Cause: cause})
		if cause.Kind == "fault" {
			// Reached the origin.
			out := make([]PathStep, len(rev))
			for i := range rev {
				out[i] = rev[len(rev)-1-i]
			}
			return out
		}
		key = causeKey{port: cause.From, mode: cause.FromMode}
	}
	return nil // defensive: cyclic provenance cannot happen (first-cause wins)
}

// Engine runs EPA over a flattened model.
type Engine struct {
	model *sysmodel.Model
	lib   *BehaviorLibrary

	ports     []PortKey
	behaviors map[string]*TypeBehavior // component ID -> behaviour
	// incoming[p] lists source ports feeding p.
	incoming map[PortKey][]PortKey
}

// NewEngine prepares an engine; the model must be flat (no composites —
// call RefineAll first for hierarchical models) and valid against the
// library's types.
func NewEngine(model *sysmodel.Model, lib *BehaviorLibrary) (*Engine, error) {
	if comps := model.Composites(); len(comps) > 0 {
		return nil, fmt.Errorf("epa: model has unresolved composites %v (refine first)", comps)
	}
	if err := model.Validate(lib.Types()); err != nil {
		return nil, fmt.Errorf("epa: %w", err)
	}
	e := &Engine{
		model:     model,
		lib:       lib,
		behaviors: make(map[string]*TypeBehavior, len(model.Components)),
		incoming:  map[PortKey][]PortKey{},
	}
	for _, c := range model.Components {
		b, err := lib.For(c.Type)
		if err != nil {
			return nil, err
		}
		e.behaviors[c.ID] = b
		ct, _ := lib.Types().Get(c.Type)
		for _, p := range ct.Ports {
			e.ports = append(e.ports, PortKey{Component: c.ID, Port: p.Name})
		}
	}
	sort.Slice(e.ports, func(i, j int) bool {
		if e.ports[i].Component != e.ports[j].Component {
			return e.ports[i].Component < e.ports[j].Component
		}
		return e.ports[i].Port < e.ports[j].Port
	})
	for _, conn := range model.Connections {
		from := PortKey{Component: conn.From.Component, Port: conn.From.Port}
		to := PortKey{Component: conn.To.Component, Port: conn.To.Port}
		e.incoming[to] = append(e.incoming[to], from)
		if conn.Flow == sysmodel.QuantityFlow {
			e.incoming[from] = append(e.incoming[from], to)
		}
	}
	return e, nil
}

// Model returns the analyzed model.
func (e *Engine) Model() *sysmodel.Model { return e.model }

// Run computes the propagation fixpoint for a scenario. Unknown
// activations (component or fault not in the model/type) are an error —
// scenario construction bugs must not silently under-approximate.
func (e *Engine) Run(scenario Scenario) (*Result, error) {
	return e.RunBudget(scenario, nil)
}

// RunBudget is Run with cancellation: the budget context is polled once
// per fixpoint iteration and exhaustion aborts with an
// *budget.ExhaustedError (stage "epa"). A partial fixpoint would
// under-approximate the propagation, so there is no partial-result mode
// at this granularity — callers degrade at the scenario level instead.
func (e *Engine) RunBudget(scenario Scenario, bud *budget.Budget) (*Result, error) {
	res := &Result{
		ports:  make(map[PortKey]ErrState, len(e.ports)),
		causes: map[causeKey]Cause{},
		model:  e.model,
	}
	// Seed: fault effects.
	for _, act := range scenario {
		comp, ok := e.model.Component(act.Component)
		if !ok {
			return nil, fmt.Errorf("epa: scenario activates unknown component %q", act.Component)
		}
		ct, _ := e.lib.Types().Get(comp.Type)
		if _, ok := ct.FaultMode(act.Fault); !ok {
			return nil, fmt.Errorf("epa: scenario activates unknown fault %q on %q (type %q)",
				act.Fault, act.Component, comp.Type)
		}
		b := e.behaviors[act.Component]
		for _, eff := range b.Effects {
			if eff.Fault != act.Fault {
				continue
			}
			ports := e.effectPorts(comp, ct, eff)
			for _, p := range ports {
				res.add(p, eff.Emit, Cause{Kind: "fault", Fault: act})
			}
		}
	}
	// Fixpoint: alternate connection propagation and intra-component
	// transfers until stable. The state space is finite and grows
	// monotonically, so this terminates.
	for changed := true; changed; {
		changed = false
		if err := bud.Err("epa"); err != nil {
			return nil, err
		}
		// Connections.
		for to, sources := range e.incoming {
			for _, from := range sources {
				st := res.ports[from]
				if st.IsOK() {
					continue
				}
				for _, m := range st.Modes() {
					if res.add(to, StateOf(m), Cause{Kind: "connection", From: from, FromMode: m}) {
						changed = true
					}
				}
			}
		}
		// Transfers.
		for _, c := range e.model.Components {
			b := e.behaviors[c.ID]
			for _, tr := range b.Transfers {
				if tr.WhenFault != "" && !scenario.Has(c.ID, tr.WhenFault) {
					continue
				}
				if tr.UnlessFault != "" && scenario.Has(c.ID, tr.UnlessFault) {
					continue
				}
				from := PortKey{Component: c.ID, Port: tr.From}
				inState := res.ports[from]
				if !inState.Intersects(tr.Match) {
					continue
				}
				trigger := firstCommonMode(inState, tr.Match)
				to := PortKey{Component: c.ID, Port: tr.To}
				if res.add(to, tr.Emit, Cause{Kind: "transfer", From: from, FromMode: trigger}) {
					changed = true
				}
			}
		}
	}
	return res, nil
}

func firstCommonMode(a, b ErrState) ErrMode {
	for _, m := range AllModes {
		if a.Has(m) && b.Has(m) {
			return m
		}
	}
	return 0
}

// effectPorts resolves the ports an effect touches ("" = all out/inout).
func (e *Engine) effectPorts(comp *sysmodel.Component, ct *sysmodel.ComponentType, eff FaultEffect) []PortKey {
	if eff.Port != "" {
		return []PortKey{{Component: comp.ID, Port: eff.Port}}
	}
	var out []PortKey
	for _, p := range ct.Ports {
		if p.Dir == sysmodel.Out || p.Dir == sysmodel.InOut {
			out = append(out, PortKey{Component: comp.ID, Port: p.Name})
		}
	}
	return out
}

// add merges the state into the port, recording first causes per new mode.
// It reports whether anything changed.
func (r *Result) add(p PortKey, st ErrState, cause Cause) bool {
	old := r.ports[p]
	merged := old.Union(st)
	if merged == old {
		return false
	}
	r.ports[p] = merged
	for _, m := range st.Modes() {
		key := causeKey{port: p, mode: m}
		if !old.Has(m) {
			if _, dup := r.causes[key]; !dup {
				r.causes[key] = cause
			}
		}
	}
	return true
}
