package solver

import (
	"fmt"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/obs"
)

// Observability integration. The solver publishes its effort onto the
// pipeline metrics registry and attaches spans to the trace, both
// carried by the governing budget's context — the same channel the
// resource caps already ride, so no solver API changes. Instrumentation
// happens at call boundaries only (session construction, one span per
// query/add); the CDCL inner loops stay untouched.

// PublishStats adds a Stats record onto the registry under the canonical
// solver.* metric names: search counters accumulate, program sizes are
// last-write-wins gauges. Nil-safe on both arguments.
func PublishStats(reg *obs.Registry, st *Stats) {
	if reg == nil || st == nil {
		return
	}
	reg.Gauge("solver.atoms").Set(int64(st.Atoms))
	reg.Gauge("solver.ground_rules").Set(int64(st.GroundRules))
	reg.Gauge("solver.vars").Set(int64(st.Vars))
	reg.Gauge("solver.clauses").Set(int64(st.Clauses))
	reg.Counter("solver.decisions").Add(st.Decisions)
	reg.Counter("solver.conflicts").Add(st.Conflicts)
	reg.Counter("solver.propagations").Add(st.Propagations)
	reg.Counter("solver.loop_clauses").Add(st.LoopClauses)
	reg.Counter("solver.stable_checks").Add(st.StableChecks)
	reg.Counter("solver.restarts").Add(st.Restarts)
	reg.Counter("solver.learned_clauses").Add(st.LearnedClauses)
	reg.Counter("solver.backjumps").Add(st.Backjumps)
	reg.Counter("solver.db_reductions").Add(st.DBReductions)
	reg.Counter("solver.sessions").Add(st.Sessions)
	reg.Counter("solver.queries").Add(st.Queries)
	reg.Counter("solver.adds").Add(st.Adds)
	reg.Counter("solver.ground_atoms_reused").Add(st.GroundAtomsReused)
	reg.Counter("solver.learned_reused").Add(st.LearnedReused)
	if st.PortfolioWorkers > 0 {
		reg.Gauge("solver.portfolio_workers").Set(st.PortfolioWorkers)
		reg.Counter("solver.portfolio_wins").Add(st.PortfolioWins)
		reg.Gauge("solver.portfolio_winner").Set(int64(st.PortfolioWinner))
		reg.Counter("solver.clauses_exported").Add(st.ClausesExported)
		reg.Counter("solver.clauses_imported").Add(st.ClausesImported)
		reg.Counter("solver.exchange_drops").Add(st.ExchangeDrops)
	}
	reg.Histogram("solver.solve_us").Observe(st.Duration.Microseconds())
}

// startSpan opens a child of the budget context's span. The name is only
// formatted when a span is actually present, so untraced runs pay one
// context lookup per call boundary and nothing else.
func startSpan(bud *budget.Budget, format string, args ...any) *obs.Span {
	parent := obs.SpanFromContext(bud.Context())
	if parent == nil {
		return nil
	}
	if len(args) == 0 {
		return parent.StartChild(format)
	}
	return parent.StartChild(fmt.Sprintf(format, args...))
}
