package dynamics

import (
	"fmt"
	"sort"

	"cpsrisk/internal/temporal"
)

// Schedule is a synthesized fault-injection schedule: which candidate
// faults the attacker activates and when.
type Schedule []Injection

// Key renders a canonical identity for the schedule.
func (s Schedule) Key() string {
	parts := make([]string, len(s))
	for i, inj := range s {
		parts[i] = fmt.Sprintf("%s@%d", inj.Key, inj.AtStep)
	}
	sort.Strings(parts)
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return "{" + out + "}"
}

// Synthesize searches for a fault-injection schedule that makes the LTLf
// requirement fail within the horizon: the embedded formal method used
// offensively ("what is the attack?") rather than defensively. The
// encoding lets the solver choose, for at most maxActive candidate
// faults, an activation step; the system dynamics then evolve
// deterministically and the negated requirement is asserted. Every
// returned model is a concrete, replayable attack schedule; ok is false
// when no schedule exists — a bounded proof of safety against the
// candidate set.
//
// Requirement propositions are holds(var, val) atoms, e.g.
// "G !holds(level,overflow)". For a stream of related queries (what-if
// probes, attack confirmation) use NewAnalyzer, which grounds this
// encoding once into a persistent session.
func Synthesize(sys *System, horizon int, candidates []string, maxActive int,
	requirement temporal.Formula) (Schedule, bool, error) {
	a, err := NewAnalyzer(sys, horizon, candidates, maxActive, requirement)
	if err != nil {
		return nil, false, err
	}
	defer a.Close()
	return a.Synthesize()
}
