package hazard

import (
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/qual"
)

// ParamSensitivity reports how sensitive the risk prioritization is to
// one likelihood estimate — the "sensitivity analysis-styled support
// [that] highlights the critical decisions from the point of view of the
// overall result" the paper requires during modeling and parametrization
// (§II-A).
type ParamSensitivity struct {
	Mutation faults.Mutation
	// TopChanged is true when perturbing this likelihood by one level in
	// either direction changes the top-ranked scenario.
	TopChanged bool
	// RankDisplacement is the maximum rank shift (over the perturbations)
	// of the scenario that is top-ranked under the nominal estimates.
	RankDisplacement int
}

// ParametrizationSensitivity perturbs each candidate's likelihood one
// level up and down and re-ranks, flagging the estimates the final
// prioritization actually depends on. Estimates that never change the top
// finding are safe to leave rough — exactly the guidance an SME analyst
// needs when filling in the model.
func ParametrizationSensitivity(eng *epa.Engine, muts []faults.Mutation, maxCard int, reqs []Requirement) ([]ParamSensitivity, error) {
	nominal, err := Analyze(eng, muts, maxCard, reqs)
	if err != nil {
		return nil, err
	}
	nominalRanked := nominal.Ranked()
	if len(nominalRanked) == 0 {
		return nil, nil
	}
	topKey := nominalRanked[0].Scenario.Key()
	s := qual.FiveLevel()

	out := make([]ParamSensitivity, 0, len(muts))
	for i := range muts {
		ps := ParamSensitivity{Mutation: muts[i]}
		for _, delta := range []int{-1, +1} {
			perturbed := append([]faults.Mutation(nil), muts...)
			perturbed[i].Likelihood = s.Add(perturbed[i].Likelihood, delta)
			if perturbed[i].Likelihood == muts[i].Likelihood {
				continue // saturated: no perturbation possible
			}
			analysis, err := Analyze(eng, perturbed, maxCard, reqs)
			if err != nil {
				return nil, err
			}
			ranked := analysis.Ranked()
			if len(ranked) == 0 {
				continue
			}
			if ranked[0].Scenario.Key() != topKey {
				ps.TopChanged = true
			}
			for pos, sc := range ranked {
				if sc.Scenario.Key() == topKey && pos > ps.RankDisplacement {
					ps.RankDisplacement = pos
				}
			}
		}
		out = append(out, ps)
	}
	return out, nil
}
