package rough

import (
	"strings"
	"testing"

	"cpsrisk/internal/qual"
	"cpsrisk/internal/risk"
)

// toyTable is the classic flu example: objects with symptoms and a
// decision, containing one inconsistent pair (o3/o4).
func toyTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable([]string{"headache", "temp"}, []Object{
		{ID: "o1", Values: map[string]string{"headache": "yes", "temp": "high"}, Decision: "flu"},
		{ID: "o2", Values: map[string]string{"headache": "yes", "temp": "high"}, Decision: "flu"},
		{ID: "o3", Values: map[string]string{"headache": "no", "temp": "high"}, Decision: "flu"},
		{ID: "o4", Values: map[string]string{"headache": "no", "temp": "high"}, Decision: "none"},
		{ID: "o5", Values: map[string]string{"headache": "no", "temp": "normal"}, Decision: "none"},
		{ID: "o6", Values: map[string]string{"headache": "yes", "temp": "normal"}, Decision: "none"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(nil, nil); err == nil {
		t.Error("no attributes must fail")
	}
	if _, err := NewTable([]string{"a", "a"}, nil); err == nil {
		t.Error("duplicate attribute must fail")
	}
	if _, err := NewTable([]string{"a"}, []Object{{ID: "", Values: map[string]string{"a": "1"}}}); err == nil {
		t.Error("empty ID must fail")
	}
	if _, err := NewTable([]string{"a"}, []Object{
		{ID: "x", Values: map[string]string{"a": "1"}},
		{ID: "x", Values: map[string]string{"a": "2"}},
	}); err == nil {
		t.Error("duplicate ID must fail")
	}
	if _, err := NewTable([]string{"a"}, []Object{{ID: "x", Values: map[string]string{}}}); err == nil {
		t.Error("missing value must fail")
	}
}

func TestPartition(t *testing.T) {
	tbl := toyTable(t)
	classes := tbl.Partition([]string{"headache", "temp"})
	if len(classes) != 4 {
		t.Fatalf("classes = %d, want 4", len(classes))
	}
	byTemp := tbl.Partition([]string{"temp"})
	if len(byTemp) != 2 {
		t.Fatalf("temp classes = %d, want 2", len(byTemp))
	}
}

func TestApproximationRegions(t *testing.T) {
	tbl := toyTable(t)
	ap := tbl.ApproximateDecision(tbl.Attributes, "flu")
	// o1,o2 certainly flu; o3,o4 boundary (same signature, different
	// decision); o5,o6 certainly not.
	assertIDs(t, "lower", ap.Lower, "o1", "o2")
	assertIDs(t, "upper", ap.Upper, "o1", "o2", "o3", "o4")
	assertIDs(t, "boundary", ap.Boundary, "o3", "o4")
	assertIDs(t, "negative", ap.Negative, "o5", "o6")
	if acc := ap.Accuracy(); acc != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", acc)
	}
}

func assertIDs(t *testing.T, what string, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s = %v, want %v", what, got, want)
		}
	}
}

// Invariants: lower ⊆ upper; regions partition the universe; crisp tables
// have empty boundary.
func TestApproximationInvariants(t *testing.T) {
	tbl := toyTable(t)
	for _, dec := range []string{"flu", "none"} {
		ap := tbl.ApproximateDecision(tbl.Attributes, dec)
		lowerSet := map[string]bool{}
		for _, id := range ap.Lower {
			lowerSet[id] = true
		}
		upperSet := map[string]bool{}
		for _, id := range ap.Upper {
			upperSet[id] = true
		}
		for id := range lowerSet {
			if !upperSet[id] {
				t.Fatalf("lower not subset of upper for %q", dec)
			}
		}
		if len(ap.Upper)+len(ap.Negative) != len(tbl.Objects) {
			t.Fatalf("upper+negative != universe for %q", dec)
		}
		if len(ap.Boundary) != len(ap.Upper)-len(ap.Lower) {
			t.Fatalf("boundary size mismatch for %q", dec)
		}
	}
	// Crisp: remove the inconsistent pair.
	crisp, err := NewTable([]string{"a"}, []Object{
		{ID: "x", Values: map[string]string{"a": "1"}, Decision: "p"},
		{ID: "y", Values: map[string]string{"a": "2"}, Decision: "q"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ap := crisp.ApproximateDecision(crisp.Attributes, "p")
	if len(ap.Boundary) != 0 || ap.Accuracy() != 1.0 {
		t.Errorf("crisp table approximation = %+v", ap)
	}
}

func TestDependencyAndReducts(t *testing.T) {
	tbl := toyTable(t)
	full := tbl.Dependency(tbl.Attributes)
	// 4 of 6 objects are in consistent classes.
	if full != 4.0/6.0 {
		t.Errorf("dependency = %v", full)
	}
	// temp alone loses consistency entirely for the high class.
	tempOnly := tbl.Dependency([]string{"temp"})
	if tempOnly >= full {
		t.Errorf("temp-only dependency %v must be below full %v", tempOnly, full)
	}
	reducts := tbl.Reducts()
	if len(reducts) != 1 || strings.Join(reducts[0], ",") != "headache,temp" {
		t.Errorf("reducts = %v", reducts)
	}
	core := tbl.Core()
	if strings.Join(core, ",") != "headache,temp" {
		t.Errorf("core = %v", core)
	}
}

func TestReductsDropRedundantAttribute(t *testing.T) {
	// "noise" is irrelevant: every reduct excludes it.
	tbl, err := NewTable([]string{"key", "noise"}, []Object{
		{ID: "a", Values: map[string]string{"key": "1", "noise": "x"}, Decision: "p"},
		{ID: "b", Values: map[string]string{"key": "2", "noise": "x"}, Decision: "q"},
		{ID: "c", Values: map[string]string{"key": "1", "noise": "y"}, Decision: "p"},
		{ID: "d", Values: map[string]string{"key": "2", "noise": "y"}, Decision: "q"},
	})
	if err != nil {
		t.Fatal(err)
	}
	reducts := tbl.Reducts()
	if len(reducts) != 1 || len(reducts[0]) != 1 || reducts[0][0] != "key" {
		t.Errorf("reducts = %v", reducts)
	}
	if core := tbl.Core(); len(core) != 1 || core[0] != "key" {
		t.Errorf("core = %v", core)
	}
}

func TestDecisionRules(t *testing.T) {
	tbl := toyTable(t)
	rules := tbl.DecisionRules(tbl.Attributes)
	var certain, possible int
	for _, r := range rules {
		if r.Certain {
			certain++
		} else {
			possible++
		}
	}
	// 3 consistent classes -> 3 certain rules; 1 inconsistent class with 2
	// decisions -> 2 possible rules.
	if certain != 3 || possible != 2 {
		t.Errorf("certain=%d possible=%d\n%v", certain, possible, rules)
	}
}

func TestClassify(t *testing.T) {
	tbl := toyTable(t)
	attrs := tbl.Attributes
	dec, certain := tbl.Classify(attrs, map[string]string{"headache": "yes", "temp": "high"})
	if !certain || len(dec) != 1 || dec[0] != "flu" {
		t.Errorf("classify crisp = %v certain=%v", dec, certain)
	}
	dec, certain = tbl.Classify(attrs, map[string]string{"headache": "no", "temp": "high"})
	if certain || len(dec) != 2 {
		t.Errorf("classify boundary = %v certain=%v", dec, certain)
	}
	dec, certain = tbl.Classify(attrs, map[string]string{"headache": "maybe", "temp": "zero"})
	if dec != nil || certain {
		t.Errorf("classify unknown = %v certain=%v", dec, certain)
	}
}

// TestRiskDecisionTable reproduces the paper's use of RST on risk
// evaluation (§V-A): a decision table of O-RA matrix cells where the Loss
// Magnitude attribute is dropped becomes partially undecidable — the
// boundary region exactly flags the (LEF) classes whose risk depends on
// the missing factor, filtering spurious certainty.
func TestRiskDecisionTable(t *testing.T) {
	s := qual.FiveLevel()
	var objects []Object
	for lm := s.Min(); lm <= s.Max(); lm++ {
		for lef := s.Min(); lef <= s.Max(); lef++ {
			objects = append(objects, Object{
				ID: "c" + s.Label(lm) + s.Label(lef),
				Values: map[string]string{
					"LM":  s.Label(lm),
					"LEF": s.Label(lef),
				},
				Decision: s.Label(risk.ORARisk(lm, lef)),
			})
		}
	}
	tbl, err := NewTable([]string{"LM", "LEF"}, objects)
	if err != nil {
		t.Fatal(err)
	}
	// With both factors the table is crisp.
	if dep := tbl.Dependency(tbl.Attributes); dep != 1.0 {
		t.Fatalf("full dependency = %v", dep)
	}
	// Dropping LM: risk no longer determined -> dependency collapses and
	// every VH-risk object lands outside the certain (positive) region
	// unless its LEF column is constant.
	dep := tbl.Dependency([]string{"LEF"})
	if dep != 0 {
		t.Errorf("LEF-only dependency = %v, want 0 (no column of Table I is constant)", dep)
	}
	ap := tbl.ApproximateDecision([]string{"LEF"}, "VH")
	if len(ap.Lower) != 0 {
		t.Errorf("nothing should be certainly VH without LM: %v", ap.Lower)
	}
	// VH risk is possible only in columns M..VH of Table I.
	for _, id := range ap.Boundary {
		if strings.HasSuffix(id, "VL") || strings.HasSuffix(id, "LL") {
			// Column VL and L(only the exact suffix "L" for column L —
			// checked below) never reach VH.
			if strings.HasSuffix(id, "VL") {
				t.Errorf("column VL cannot possibly be VH: %s", id)
			}
		}
	}
	// Both factors form the single reduct: each is indispensable.
	reducts := tbl.Reducts()
	if len(reducts) != 1 || len(reducts[0]) != 2 {
		t.Errorf("reducts = %v", reducts)
	}
}

func BenchmarkReducts(b *testing.B) {
	s := qual.FiveLevel()
	var objects []Object
	for lm := s.Min(); lm <= s.Max(); lm++ {
		for lef := s.Min(); lef <= s.Max(); lef++ {
			objects = append(objects, Object{
				ID: "c" + s.Label(lm) + "_" + s.Label(lef),
				Values: map[string]string{
					"LM": s.Label(lm), "LEF": s.Label(lef),
					"noise1": s.Label(lm % 2), "noise2": s.Label(lef % 2),
				},
				Decision: s.Label(risk.ORARisk(lm, lef)),
			})
		}
	}
	tbl, err := NewTable([]string{"LM", "LEF", "noise1", "noise2"}, objects)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tbl.Reducts(); len(got) == 0 {
			b.Fatal("no reducts")
		}
	}
}
