// Package cegar implements the CEGAR-styled model refinement of the
// framework (paper Fig. 1, step 5): the shortlist of potentially
// successful attacks from the abstract qualitative analysis may contain
// spurious solutions due to over-abstraction (but no hazard is
// overlooked); each abstract counterexample is validated against a
// concrete oracle, spurious ones trigger refinement to the next, more
// precise abstraction level and re-analysis, until the remaining findings
// are confirmed or marked for expert review.
package cegar

import (
	"fmt"
	"sync"
	"time"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/logic"
	"cpsrisk/internal/obs"
	"cpsrisk/internal/plant"
	"cpsrisk/internal/solver"
)

// Finding is one abstract counterexample: a scenario flagged as violating
// a requirement.
type Finding struct {
	Scenario epa.Scenario
	ReqID    string
}

// String implements fmt.Stringer.
func (f Finding) String() string { return f.Scenario.Key() + " violates " + f.ReqID }

// Verdict classifies a finding after oracle validation.
type Verdict int

// Verdicts.
const (
	// Confirmed: the concrete oracle reproduced the violation.
	Confirmed Verdict = iota + 1
	// Spurious: the oracle refuted the violation at this abstraction.
	Spurious
	// Undetermined: the oracle cannot decide (e.g. the scenario is not
	// concretely representable); the paper routes these to expert review.
	Undetermined
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Confirmed:
		return "confirmed"
	case Spurious:
		return "spurious"
	case Undetermined:
		return "undetermined"
	default:
		return "unknown-verdict"
	}
}

// Oracle validates an abstract counterexample concretely.
//
// When the refinement loop runs with parallelism > 1 (RunParallel),
// Check is called from multiple goroutines concurrently and the
// implementation must be safe for that. PlantOracle is: a check only
// reads the configuration and simulates a private plant instance.
type Oracle interface {
	// Check returns the verdict for a finding.
	Check(f Finding) (Verdict, error)
}

// Level is one abstraction level of the analysis: an EPA engine (model +
// behaviour precision), its candidate mutations, and the requirement
// conditions at that precision. Levels are ordered coarse to fine.
type Level struct {
	Name         string
	Engine       *epa.Engine
	Mutations    []faults.Mutation
	Requirements []hazard.Requirement
}

// Judged is a finding with its verdict and the level that produced it.
type Judged struct {
	Finding Finding
	Verdict Verdict
	Level   string
}

// Result is the loop outcome.
type Result struct {
	// Findings holds the final classification of every finding of the
	// finest analyzed level.
	Findings []Judged
	// Iterations counts analyzed levels.
	Iterations int
	// PerLevelFindings records how many findings each level produced
	// (shrinking counts show the refinement working).
	PerLevelFindings []int
	// PerLevelScreened records, per level, how many findings the formal
	// re-check session resolved without a concrete oracle call.
	PerLevelScreened []int
	// Truncations records budget exhaustions hit during the loop: a
	// truncated hazard analysis, or validation cut short (remaining
	// findings routed to Undetermined).
	Truncations []budget.Truncation
}

// Confirmed lists confirmed findings.
func (r *Result) Confirmed() []Judged { return r.filter(Confirmed) }

// Spurious lists spurious findings.
func (r *Result) Spurious() []Judged { return r.filter(Spurious) }

// Undetermined lists findings needing expert review.
func (r *Result) Undetermined() []Judged { return r.filter(Undetermined) }

func (r *Result) filter(v Verdict) []Judged {
	var out []Judged
	for _, j := range r.Findings {
		if j.Verdict == v {
			out = append(out, j)
		}
	}
	return out
}

// Run executes the refinement loop: analyze the coarsest level; validate
// its findings; while any finding is spurious and a finer level exists,
// move to the next level and re-analyze. The final level's findings are
// returned with their verdicts. maxCard bounds scenario cardinality.
func Run(levels []Level, oracle Oracle, maxCard int) (*Result, error) {
	return RunBudget(levels, oracle, maxCard, nil)
}

// RunBudget is Run under a resource budget. Each level's hazard analysis
// degrades as hazard.AnalyzeBudget does (truncations are collected on the
// result); the budget is also polled between oracle calls — concrete
// validation can dominate wall-clock time — and on exhaustion every
// not-yet-validated finding of the current level is routed to
// Undetermined (expert review), matching the paper's handling of
// undecidable counterexamples. A nil budget is unlimited.
func RunBudget(levels []Level, oracle Oracle, maxCard int, bud *budget.Budget) (*Result, error) {
	return RunParallel(levels, oracle, maxCard, bud, 1)
}

// RunParallel is RunBudget with a worker pool: each level's hazard
// analysis uses the parallel scenario sweep and its abstract
// counterexamples are validated against the oracle concurrently (the
// oracle must be safe for concurrent Check calls). parallelism <= 0
// picks GOMAXPROCS, 1 is exactly the sequential loop. Verdicts are
// deterministic and ordered as sequentially; only the point at which a
// wall-clock exhaustion cuts validation over to Undetermined can vary,
// exactly as it does sequentially.
func RunParallel(levels []Level, oracle Oracle, maxCard int, bud *budget.Budget, parallelism int) (*Result, error) {
	return runParallel(levels, oracle, maxCard, bud, parallelism, false)
}

// RunParallelScreened is RunParallel with the formal re-check screen: one
// persistent solver session per level answers an assumption query for
// every abstract counterexample before the oracle sees it, so findings
// the level's own formal model refutes never pay for a concrete check.
// Grounding the screen costs one ASP encoding per level — worth it when
// the oracle is expensive (simulation, test rigs) or the findings come
// from an engine other than the screen's encoding; the plain RunParallel
// stays oracle-only for cheap-oracle pipelines.
func RunParallelScreened(levels []Level, oracle Oracle, maxCard int, bud *budget.Budget, parallelism int) (*Result, error) {
	return runParallel(levels, oracle, maxCard, bud, parallelism, true)
}

func runParallel(levels []Level, oracle Oracle, maxCard int, bud *budget.Budget, parallelism int, screen bool) (*Result, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("cegar: no abstraction levels")
	}
	res := &Result{}
	reg := obs.RegistryFromContext(bud.Context())
	for li, level := range levels {
		res.Iterations++
		// Each refinement level gets its own span; the level's hazard
		// re-analysis, formal screen, and oracle validation nest under it
		// through the derived budget.
		lctx, lspan := obs.StartSpan(bud.Context(), "level["+level.Name+"]")
		lbud := bud
		if lspan != nil {
			lbud = budget.New(lctx, bud.Limits())
		}
		endLevel := func(err error) error { lspan.End(); return err }
		reg.Counter("cegar.levels").Inc()
		analysis, err := hazard.AnalyzeParallelBudget(level.Engine, level.Mutations, maxCard, level.Requirements, lbud, parallelism)
		if err != nil {
			return nil, endLevel(fmt.Errorf("cegar: level %q: %w", level.Name, err))
		}
		if analysis.Truncation != nil {
			t := *analysis.Truncation
			t.Stage = "cegar/" + level.Name + "/" + t.Stage
			res.Truncations = append(res.Truncations, t)
		}
		var findings []Finding
		for _, s := range analysis.Hazards() {
			for _, reqID := range s.Violated {
				findings = append(findings, Finding{Scenario: s.Scenario, ReqID: reqID})
			}
		}
		reg.Counter("cegar.findings").Add(int64(len(findings)))
		var screened []Verdict
		if screen {
			if screened, err = screenFindings(level, findings, lbud); err != nil {
				return nil, endLevel(fmt.Errorf("cegar: level %q re-check: %w", level.Name, err))
			}
		}
		nScreened := 0
		for _, v := range screened {
			if v != 0 {
				nScreened++
			}
		}
		res.PerLevelScreened = append(res.PerLevelScreened, nScreened)
		reg.Counter("cegar.screened_out").Add(int64(nScreened))
		judged, trunc, err := validateFindings(level.Name, findings, screened, oracle, lbud, parallelism)
		if err != nil {
			return nil, endLevel(err)
		}
		if trunc != nil {
			trunc.Stamp(lctx)
			res.Truncations = append(res.Truncations, *trunc)
		}
		anySpurious := false
		for _, j := range judged {
			reg.Counter("cegar.verdict." + j.Verdict.String()).Inc()
			if j.Verdict == Spurious {
				anySpurious = true
			}
		}
		res.PerLevelFindings = append(res.PerLevelFindings, len(judged))
		res.Findings = judged
		endLevel(nil)
		if trunc != nil || !anySpurious || li == len(levels)-1 {
			return res, nil
		}
		// Spurious findings remain: refine (continue with the next finer
		// level) and re-analyze.
	}
	return res, nil
}

// screenFindings formally re-checks one level's abstract counterexamples
// before any concrete oracle runs: one persistent multi-shot solver
// session over the level's ASP encoding answers one assumption query per
// finding, pinning the exact scenario (every listed activation true, the
// total activation count capped at the scenario size) and requiring the
// requirement's violation atom. A finding the formal model refutes is
// spurious at the abstract level itself and never reaches the oracle —
// concrete simulation is the expensive step the session amortizes away.
//
// The returned slice is indexed like findings; 0 means "needs concrete
// validation". Sessions are single-goroutine, so the screen runs on the
// calling goroutine and only the surviving findings fan out to the
// oracle worker pool. If the budget cannot afford grounding the screen,
// every finding falls through to concrete validation.
func screenFindings(level Level, findings []Finding, bud *budget.Budget) ([]Verdict, error) {
	if len(findings) == 0 {
		return nil, nil
	}
	prog, err := level.Engine.EncodeASP()
	if err != nil {
		return nil, err
	}
	faults.EncodeChoice(prog, level.Mutations, -1)
	for _, r := range level.Requirements {
		if err := hazard.EncodeViolation(prog, r.ID, r.Condition); err != nil {
			return nil, err
		}
	}
	verdicts := make([]Verdict, len(findings))
	sess, err := solver.NewSession(prog, solver.Options{Budget: bud})
	if err != nil {
		if _, ok := budget.Exhausted(err); ok {
			return verdicts, nil
		}
		return nil, err
	}
	defer sess.Close()
	for i, f := range findings {
		assumps := make([]solver.Assumption, 0, len(f.Scenario)+2)
		for _, a := range f.Scenario {
			assumps = append(assumps, solver.AssumeTrue(epa.ActiveAtom(a.Component, a.Fault).Key()))
		}
		assumps = append(assumps,
			solver.AssumeCountLT("active", len(f.Scenario)+1),
			solver.AssumeTrue(logic.A("violated", logic.Sym(f.ReqID)).Key()))
		res, err := sess.SolveAssuming(assumps, solver.Options{MaxModels: 1, Budget: bud})
		if err != nil {
			return nil, err
		}
		if res.Interrupted {
			// Budget gone mid-screen: the rest validates concretely (and
			// the concrete stage routes them onward as it sees fit).
			break
		}
		if !res.Satisfiable {
			verdicts[i] = Spurious
		}
	}
	return verdicts, nil
}

// validateFindings runs the oracle over one level's findings, polling
// the budget before every check; once it trips, the remaining findings
// are routed to Undetermined and a single truncation reports how many
// were validated. Findings the formal screen already resolved (screened
// verdict != 0) are recorded without an oracle call. With parallelism > 1
// the checks fan out to a worker pool; verdict order is preserved by
// index.
func validateFindings(levelName string, findings []Finding, screened []Verdict, oracle Oracle, bud *budget.Budget, parallelism int) ([]Judged, *budget.Truncation, error) {
	if parallelism > len(findings) {
		parallelism = len(findings)
	}
	// Oracle workers beyond the first draw launch slots from the run-wide
	// worker-pool governor when the budget carries one; zero grants
	// degrade to the sequential loop, never to a stall.
	if parallelism > 1 {
		gov := bud.Governor()
		granted := gov.AcquireUpTo(parallelism - 1)
		defer gov.Release(granted)
		parallelism = 1 + granted
	}
	judged := make([]Judged, len(findings))
	checked := make([]bool, len(findings))
	errs := make([]error, len(findings))
	exhaustedReason := make([]string, len(findings))

	parentSpan := obs.SpanFromContext(bud.Context())
	cOracle := obs.RegistryFromContext(bud.Context()).Counter("cegar.oracle_checks")
	inj := bud.Injector()
	check := func(i int) {
		f := findings[i]
		if screened != nil && screened[i] != 0 {
			judged[i] = Judged{Finding: f, Verdict: screened[i], Level: levelName}
			checked[i] = true
			return
		}
		if budErr := bud.Err("cegar"); budErr != nil {
			judged[i] = Judged{Finding: f, Verdict: Undetermined, Level: levelName}
			if ex, ok := budget.Exhausted(budErr); ok {
				exhaustedReason[i] = ex.Reason
			}
			return
		}
		var sp *obs.Span
		if parentSpan != nil {
			sp = parentSpan.StartChild(fmt.Sprintf("oracle#%d", i))
		}
		// A flaky oracle (or an injected transient) is retried with
		// backoff before the finding is abandoned — refinement loops are
		// long-lived and one transient must not void a whole level.
		var verdict Verdict
		err := faultinject.Retry(bud.Context(), 2, time.Millisecond, func() error {
			if inj != nil {
				if ferr := inj.Fire(faultinject.SiteOracle); ferr != nil {
					return ferr
				}
			}
			cOracle.Inc()
			v, cerr := oracle.Check(f)
			if cerr == nil {
				verdict = v
			}
			return cerr
		})
		sp.End()
		if err != nil {
			errs[i] = fmt.Errorf("cegar: oracle on %s: %w", f, err)
			return
		}
		judged[i] = Judged{Finding: f, Verdict: verdict, Level: levelName}
		checked[i] = true
	}

	if parallelism <= 1 {
		for i := range findings {
			check(i)
		}
	} else {
		idxCh := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < parallelism; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxCh {
					check(i)
				}
			}()
		}
		for i := range findings {
			idxCh <- i
		}
		close(idxCh)
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	validated := 0
	for _, ok := range checked {
		if ok {
			validated++
		}
	}
	var trunc *budget.Truncation
	for _, reason := range exhaustedReason {
		if reason != "" {
			trunc = &budget.Truncation{
				Stage:  "cegar/" + levelName + "/validate",
				Reason: reason,
				Detail: fmt.Sprintf("%d findings validated before exhaustion; the rest need expert review", validated),
			}
			break
		}
	}
	return judged, trunc, nil
}

// PlantOracle validates water-tank findings by simulating the concrete
// plant. Because the qualitative analysis abstracts from timing, the
// oracle probes several injection instants (including mid-fill, where
// sensor blindness bites) and confirms the finding if any probe violates
// the requirement. Scenarios the plant cannot represent are Undetermined
// (expert review).
type PlantOracle struct {
	Config plant.Config
}

// NewPlantOracle builds an oracle over the default plant configuration.
func NewPlantOracle() *PlantOracle { return &PlantOracle{Config: plant.DefaultConfig()} }

var _ Oracle = (*PlantOracle)(nil)

// Check implements Oracle.
func (o *PlantOracle) Check(f Finding) (Verdict, error) {
	baseInjs, err := plant.InjectionsFromScenario(f.Scenario)
	if err != nil {
		return Undetermined, nil //nolint:nilerr // unrepresentable -> expert review
	}
	probes, err := o.probeSteps()
	if err != nil {
		return Undetermined, err
	}
	for _, at := range probes {
		injs := make([]plant.Injection, len(baseInjs))
		copy(injs, baseInjs)
		for i := range injs {
			injs[i].AtStep = at
		}
		tr, err := plant.Simulate(o.Config, injs)
		if err != nil {
			return Undetermined, err
		}
		violated := false
		switch f.ReqID {
		case "R1":
			violated = tr.Overflowed()
		case "R2":
			violated = tr.Overflowed() && !tr.AlertedAfterOverflow()
		default:
			return Undetermined, nil
		}
		if violated {
			return Confirmed, nil
		}
	}
	return Spurious, nil
}

// probeSteps picks injection instants: at start, during the first filling
// phase, and during the first draining phase of the nominal run.
func (o *PlantOracle) probeSteps() ([]int, error) {
	nominal, err := plant.Simulate(o.Config, nil)
	if err != nil {
		return nil, err
	}
	steps := []int{0}
	fill, drain := -1, -1
	for _, s := range nominal.Steps {
		if fill < 0 && s.InFlow > 0 {
			fill = s.T + 1
		}
		if drain < 0 && s.OutFlow > 0 {
			drain = s.T + 1
		}
		if fill >= 0 && drain >= 0 {
			break
		}
	}
	if fill >= 0 {
		steps = append(steps, fill)
	}
	if drain >= 0 {
		steps = append(steps, drain)
	}
	return steps, nil
}
