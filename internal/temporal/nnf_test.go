package temporal

import (
	"math/rand"
	"testing"
)

// randFormula generates a random formula of bounded depth over props a, b.
func randFormula(rng *rand.Rand, depth int) Formula {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			return P("a")
		case 1:
			return P("b")
		case 2:
			return TrueF{}
		default:
			return FalseF{}
		}
	}
	switch rng.Intn(10) {
	case 0:
		return Not(randFormula(rng, depth-1))
	case 1:
		return Next(randFormula(rng, depth-1))
	case 2:
		return WeakNext(randFormula(rng, depth-1))
	case 3:
		return Finally(randFormula(rng, depth-1))
	case 4:
		return Globally(randFormula(rng, depth-1))
	case 5:
		return And(randFormula(rng, depth-1), randFormula(rng, depth-1))
	case 6:
		return Or(randFormula(rng, depth-1), randFormula(rng, depth-1))
	case 7:
		return Implies(randFormula(rng, depth-1), randFormula(rng, depth-1))
	case 8:
		return Until(randFormula(rng, depth-1), randFormula(rng, depth-1))
	default:
		return Release(randFormula(rng, depth-1), randFormula(rng, depth-1))
	}
}

// allTraces enumerates every trace of length n over props a, b.
func allTraces(n int) []Trace {
	var out []Trace
	total := 1 << uint(2*n)
	for mask := 0; mask < total; mask++ {
		tr := make(Trace, n)
		for i := 0; i < n; i++ {
			st := State{}
			if mask>>(2*i)&1 == 1 {
				st["a"] = true
			}
			if mask>>(2*i+1)&1 == 1 {
				st["b"] = true
			}
			tr[i] = st
		}
		out = append(out, tr)
	}
	return out
}

// TestNNFPreservesSemantics: NNF(f) ≡ f on every trace of length 0..3 for
// 300 random formulas — validating all the finite-trace dualities at once.
func TestNNFPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var traces []Trace
	traces = append(traces, Trace{})
	for n := 1; n <= 3; n++ {
		traces = append(traces, allTraces(n)...)
	}
	for trial := 0; trial < 300; trial++ {
		f := randFormula(rng, 3)
		g := NNF(f)
		if !IsNNF(g) {
			t.Fatalf("trial %d: NNF(%s) = %s is not in NNF", trial, f, g)
		}
		for _, tr := range traces {
			if Eval(f, tr) != Eval(g, tr) {
				t.Fatalf("trial %d: %s vs NNF %s differ on %v", trial, f, g, tr)
			}
		}
	}
}

func TestNNFIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		f := randFormula(rng, 3)
		once := NNF(f)
		twice := NNF(once)
		if once.String() != twice.String() {
			t.Fatalf("NNF not idempotent: %s -> %s -> %s", f, once, twice)
		}
	}
}

func TestNNFSpecificDualities(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"!!a", "a"},
		{"!(a & b)", "!a | !b"},
		{"!(a | b)", "!a & !b"},
		{"!X a", "WX !a"},
		{"!WX a", "X !a"},
		{"!F a", "G !a"},
		{"!G a", "F !a"},
		{"!(a U b)", "!a R !b"},
		{"!(a R b)", "!a U !b"},
		{"a -> b", "!a | b"},
		{"!(a -> b)", "a & !b"},
		{"!true", "false"},
		{"!false", "true"},
	}
	for _, tt := range tests {
		f := MustParseFormula(tt.in)
		want := MustParseFormula(tt.want)
		if got := NNF(f); got.String() != want.String() {
			t.Errorf("NNF(%s) = %s, want %s", tt.in, got, want)
		}
	}
}

// The unroller accepts NNF formulas identically (regression against
// requirement-library rewrites).
func TestUnrollNNFAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		f := randFormula(rng, 2)
		g := NNF(f)
		for _, tr := range allTraces(2) {
			if holdsViaASP(t, f, tr) != holdsViaASP(t, g, tr) {
				t.Fatalf("trial %d: ASP unrolling differs between %s and %s", trial, f, g)
			}
		}
	}
}
