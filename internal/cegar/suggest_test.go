package cegar

import (
	"testing"

	"cpsrisk/internal/plant"
)

func TestSuggestRefinements(t *testing.T) {
	ls := levels(t)
	res, err := Run(ls, NewPlantOracle(), -1)
	if err != nil {
		t.Fatal(err)
	}
	spurious := res.Spurious()
	if len(spurious) == 0 {
		t.Fatal("expected spurious findings on the fine level")
	}
	suggestions, err := SuggestRefinements(ls[1].Engine, spurious)
	if err != nil {
		t.Fatal(err)
	}
	if len(suggestions) == 0 {
		t.Fatal("no suggestions")
	}
	// Ordered by implication count descending.
	for i := 1; i < len(suggestions); i++ {
		if suggestions[i-1].SpuriousFindings < suggestions[i].SpuriousFindings {
			t.Fatalf("ordering broken: %+v", suggestions)
		}
	}
	// The spurious findings all stem from the stuck output valve: it (or
	// its neighborhood) must be implicated.
	found := false
	for _, s := range suggestions {
		if s.Component == plant.CompOutValve {
			found = true
			if s.SpuriousFindings < 1 {
				t.Errorf("output valve count = %d", s.SpuriousFindings)
			}
		}
	}
	if !found {
		t.Errorf("output valve not implicated: %+v", suggestions)
	}
}

func TestSuggestRefinementsEmpty(t *testing.T) {
	ls := levels(t)
	suggestions, err := SuggestRefinements(ls[1].Engine, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(suggestions) != 0 {
		t.Fatalf("suggestions = %v", suggestions)
	}
}
