package hazard

import (
	"context"
	"strings"
	"testing"
	"time"

	"cpsrisk/internal/budget"
)

func TestAnalyzeBudgetScenarioCapFallsBackToCompletedCardinality(t *testing.T) {
	eng, muts, reqs := setup(t)
	// Full space with 3 candidates: 1 + 3 + 3 + 1 = 8 scenarios. A cap of
	// 5 interrupts inside cardinality 2 (scenarios 5..7), so the analysis
	// must fall back to cardinality <= 1 (4 scenarios).
	bud := budget.New(context.Background(), budget.Limits{MaxScenarios: 5})
	a, err := AnalyzeBudget(eng, muts, -1, reqs, bud)
	if err != nil {
		t.Fatal(err)
	}
	if a.Truncation == nil {
		t.Fatal("expected truncation")
	}
	if a.Truncation.Reason != budget.ReasonScenarios {
		t.Errorf("reason = %q", a.Truncation.Reason)
	}
	if len(a.Scenarios) != 4 {
		t.Fatalf("scenarios = %d, want 4 (cardinality <= 1)", len(a.Scenarios))
	}
	for _, s := range a.Scenarios {
		if len(s.Scenario) > 1 {
			t.Errorf("partial cardinality leaked: %s", s.Scenario.Key())
		}
	}
	if !strings.Contains(a.Truncation.Detail, "cardinality <= 1") {
		t.Errorf("detail = %q", a.Truncation.Detail)
	}
	if !strings.Contains(a.Truncation.Detail, "4 of 8") {
		t.Errorf("detail = %q", a.Truncation.Detail)
	}
}

func TestAnalyzeBudgetCapAtCardinalityBoundaryKeepsAll(t *testing.T) {
	eng, muts, reqs := setup(t)
	// Cap exactly at the cardinality-1 boundary: 1 + 3 = 4 scenarios kept,
	// nothing dropped beyond the frontier.
	bud := budget.New(context.Background(), budget.Limits{MaxScenarios: 4})
	a, err := AnalyzeBudget(eng, muts, -1, reqs, bud)
	if err != nil {
		t.Fatal(err)
	}
	if a.Truncation == nil {
		t.Fatal("expected truncation")
	}
	if len(a.Scenarios) != 4 {
		t.Fatalf("scenarios = %d, want 4", len(a.Scenarios))
	}
}

func TestAnalyzeBudgetCancelledContextReturnsPromptly(t *testing.T) {
	eng, muts, reqs := setup(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bud := budget.New(ctx, budget.Limits{})
	start := time.Now()
	a, err := AnalyzeBudget(eng, muts, -1, reqs, bud)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled analysis did not return promptly")
	}
	if a.Truncation == nil || a.Truncation.Reason != budget.ReasonCancelled {
		t.Fatalf("truncation = %+v", a.Truncation)
	}
	if len(a.Scenarios) != 0 {
		t.Errorf("scenarios = %d", len(a.Scenarios))
	}
	if !strings.Contains(a.Truncation.Detail, "no cardinality completed") {
		t.Errorf("detail = %q", a.Truncation.Detail)
	}
}

func TestAnalyzeBudgetNilBudgetIsExhaustive(t *testing.T) {
	eng, muts, reqs := setup(t)
	a, err := AnalyzeBudget(eng, muts, -1, reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Truncation != nil {
		t.Fatalf("truncation = %+v", a.Truncation)
	}
	if len(a.Scenarios) != 8 {
		t.Fatalf("scenarios = %d", len(a.Scenarios))
	}
}

func TestAnalyzeASPBudgetPopulatesSolverStats(t *testing.T) {
	eng, muts, reqs := setup(t)
	a, err := AnalyzeASPBudget(eng, muts, 1, reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.SolverStats == nil {
		t.Fatal("solver stats missing on the ASP path")
	}
	if a.SolverStats.Duration <= 0 {
		t.Errorf("stats = %+v", a.SolverStats)
	}
	if a.Truncation != nil {
		t.Errorf("unexpected truncation: %+v", a.Truncation)
	}
}

func TestAnalyzeASPBudgetGroundCapAborts(t *testing.T) {
	eng, muts, reqs := setup(t)
	bud := budget.New(context.Background(), budget.Limits{MaxGroundRules: 3})
	_, err := AnalyzeASPBudget(eng, muts, 1, reqs, bud)
	ex, ok := budget.Exhausted(err)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if ex.Stage != "ground" {
		t.Errorf("stage = %q", ex.Stage)
	}
}

func TestAnalyzeASPBudgetScenarioCapTruncates(t *testing.T) {
	eng, muts, reqs := setup(t)
	bud := budget.New(context.Background(), budget.Limits{MaxScenarios: 3})
	a, err := AnalyzeASPBudget(eng, muts, -1, reqs, bud)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Scenarios) != 3 {
		t.Fatalf("scenarios = %d", len(a.Scenarios))
	}
	if a.Truncation == nil || a.Truncation.Reason != budget.ReasonScenarios {
		t.Fatalf("truncation = %+v", a.Truncation)
	}
}
