package hazard

import (
	"context"
	"testing"

	"cpsrisk/internal/budget"
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faultinject"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/store"
)

func benchBudget(b *testing.B, inj *faultinject.Injector) *budget.Budget {
	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	inj.BindCancel(cancel)
	return budget.New(faultinject.ContextWith(ctx, inj), budget.Limits{})
}

func benchCache(b *testing.B, eng *epa.Engine, muts []faults.Mutation) *store.Cache {
	cache, err := store.Open(b.TempDir(), SweepNamespace(eng, muts), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cache.Close() })
	return cache
}

// The crash-safety machinery advertises a nil-check-only cost when
// disabled: a sweep with no cache, no checkpoint, and no injector must
// run at the same speed it did before the machinery existed. These
// benchmarks pin the three rungs of that ladder — compare
// BenchmarkSweepPlain against BenchmarkSweepInjectorArmed to see the
// armed-but-missing cost, and against BenchmarkSweepCached to see what
// a warm persistent cache buys.

func benchSweep(b *testing.B, cfg SweepConfig) {
	eng, muts, reqs := setupWide(b, 8) // 256 scenarios
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeSweep(eng, muts, -1, reqs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepPlain is the disabled fault path: zero SweepConfig,
// exactly what every caller ran before this machinery existed.
func BenchmarkSweepPlain(b *testing.B) {
	benchSweep(b, SweepConfig{Parallelism: 4})
}

// BenchmarkSweepInjectorArmed runs with an injector armed on a site the
// sweep never fires, so every Fire call takes the full miss path.
func BenchmarkSweepInjectorArmed(b *testing.B) {
	inj, err := faultinject.New(1, "never.fires=err@1")
	if err != nil {
		b.Fatal(err)
	}
	benchSweep(b, SweepConfig{Parallelism: 4, Budget: benchBudget(b, inj)})
}

// BenchmarkSweepCached sweeps against a warm persistent cache: every
// scenario is a hit, so this bounds the best-case resume cost.
func BenchmarkSweepCached(b *testing.B) {
	eng, muts, reqs := setupWide(b, 8)
	cache := benchCache(b, eng, muts)
	cfg := SweepConfig{Parallelism: 4, Cache: cache}
	if _, err := AnalyzeSweep(eng, muts, -1, reqs, cfg); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeSweep(eng, muts, -1, reqs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
