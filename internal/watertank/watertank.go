// Package watertank builds the paper's §VII case study: the water-tank
// CPS (inspired by the Tennessee Eastman Process benchmark) with input and
// output valve actuators and their controllers, a water-level sensor, a
// hysteresis tank controller, an HMI, and an Engineering Workstation whose
// compromise can reconfigure the actuators and silence the HMI (fault F4
// causing F1/F2/F3 effects). It provides the system model, the EPA
// behaviour library, the safety requirements R1/R2 with their qualitative
// violation conditions, the paper's candidate fault set F1..F4, and the
// Fig. 4 hierarchical variant with a composite workstation.
//
// Component and fault names are shared with package plant, whose simulator
// is the concrete oracle for this model.
package watertank

import (
	"cpsrisk/internal/epa"
	"cpsrisk/internal/faults"
	"cpsrisk/internal/hazard"
	"cpsrisk/internal/plant"
	"cpsrisk/internal/qual"
	"cpsrisk/internal/sysmodel"
)

// Component type names.
const (
	TypeTank       = "tank"
	TypeValve      = "valve"
	TypeValveCtl   = "valve_controller"
	TypeSensor     = "sensor"
	TypeController = "controller"
	TypeHMI        = "hmi"
	TypeWS         = "workstation"
	// Inner types of the refined workstation (paper Fig. 4).
	TypeEmail   = "email_client"
	TypeBrowser = "browser"
	TypeOS      = "os"
)

// Types returns the component-type library of the case study.
func Types() *sysmodel.TypeLibrary {
	lib := sysmodel.NewTypeLibrary()
	sig := func(n string, d sysmodel.PortDir) sysmodel.PortSpec {
		return sysmodel.PortSpec{Name: n, Dir: d, Flow: sysmodel.SignalFlow}
	}
	qty := func(n string) sysmodel.PortSpec {
		return sysmodel.PortSpec{Name: n, Dir: sysmodel.InOut, Flow: sysmodel.QuantityFlow}
	}
	lib.MustAdd(&sysmodel.ComponentType{
		Name: TypeTank, Layer: "physical",
		Ports: []sysmodel.PortSpec{qty("in_pipe"), qty("out_pipe"), qty("surface")},
	})
	lib.MustAdd(&sysmodel.ComponentType{
		Name: TypeValve, Layer: "physical",
		Ports: []sysmodel.PortSpec{sig("cmd", sysmodel.In), qty("pipe")},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: plant.FaultStuckOpen, Likelihood: "L",
				Description: "valve stuck in the open position"},
			{Name: plant.FaultStuckClosed, Likelihood: "L",
				Description: "valve stuck in the closed position"},
		},
	})
	lib.MustAdd(&sysmodel.ComponentType{
		Name: TypeValveCtl, Layer: "technology",
		Ports: []sysmodel.PortSpec{
			sig("ctl", sysmodel.In), sig("cfg", sysmodel.In), sig("cmd", sysmodel.Out),
		},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: plant.FaultBadCommand, Likelihood: "VL", AttackOnly: true,
				Description: "controller issues wrong actuator commands"},
		},
	})
	lib.MustAdd(&sysmodel.ComponentType{
		Name: TypeSensor, Layer: "physical",
		Ports: []sysmodel.PortSpec{qty("measure"), sig("reading", sysmodel.Out)},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: plant.FaultNoSignal, Likelihood: "L",
				Description: "sensor stops reporting"},
		},
	})
	lib.MustAdd(&sysmodel.ComponentType{
		Name: TypeController, Layer: "technology",
		Ports: []sysmodel.PortSpec{
			sig("reading", sysmodel.In),
			sig("cmd_in", sysmodel.Out), sig("cmd_out", sysmodel.Out),
			sig("alert", sysmodel.Out),
		},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: "crash", Likelihood: "VL", Description: "controller halts"},
		},
	})
	lib.MustAdd(&sysmodel.ComponentType{
		Name: TypeHMI, Layer: "application",
		Ports: []sysmodel.PortSpec{
			sig("alert", sysmodel.In), sig("mgmt", sysmodel.In), sig("display", sysmodel.Out),
		},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: plant.FaultNoSignal, Likelihood: "L",
				Description: "HMI loses operator alerts"},
		},
	})
	lib.MustAdd(&sysmodel.ComponentType{
		Name: TypeWS, Layer: "application",
		Ports: []sysmodel.PortSpec{
			sig("cfg_in", sysmodel.Out), sig("cfg_out", sysmodel.Out), sig("mgmt", sysmodel.Out),
		},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: plant.FaultCompromised, Likelihood: "M", AttackOnly: true,
				Description: "attacker controls the engineering workstation"},
		},
	})
	// Inner workstation components for the Fig. 4 refinement.
	lib.MustAdd(&sysmodel.ComponentType{
		Name: TypeEmail, Layer: "application",
		Ports: []sysmodel.PortSpec{sig("link", sysmodel.Out)},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: plant.FaultCompromised, Likelihood: "M", AttackOnly: true,
				Description: "user opened a malicious link"},
		},
	})
	lib.MustAdd(&sysmodel.ComponentType{
		Name: TypeBrowser, Layer: "application",
		Ports: []sysmodel.PortSpec{sig("link", sysmodel.In), sig("download", sysmodel.Out)},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: plant.FaultCompromised, Likelihood: "M", AttackOnly: true,
				Description: "drive-by download executed"},
		},
	})
	lib.MustAdd(&sysmodel.ComponentType{
		Name: TypeOS, Layer: "application",
		Ports: []sysmodel.PortSpec{
			sig("download", sysmodel.In),
			sig("cfg_in", sysmodel.Out), sig("cfg_out", sysmodel.Out), sig("mgmt", sysmodel.Out),
		},
		FaultModes: []sysmodel.FaultModeSpec{
			{Name: plant.FaultCompromised, Likelihood: "M", AttackOnly: true,
				Description: "malware controls the operating system"},
		},
	})
	return lib
}

// Model builds the flat case-study model with requirements R1 and R2.
func Model() *sysmodel.Model {
	m := sysmodel.NewModel("water-tank")
	add := func(id, typ string, attrs map[string]string) {
		m.MustAddComponent(&sysmodel.Component{ID: id, Type: typ, Attrs: attrs})
	}
	add(plant.CompTank, TypeTank, nil)
	add(plant.CompInValve, TypeValve, nil)
	add(plant.CompOutValve, TypeValve, nil)
	add(plant.CompInValveCtl, TypeValveCtl, nil)
	add(plant.CompOutValveCtl, TypeValveCtl, nil)
	add(plant.CompLevelSensor, TypeSensor, nil)
	add(plant.CompController, TypeController, nil)
	add(plant.CompHMI, TypeHMI, nil)
	add(plant.CompEWS, TypeWS, map[string]string{"exposure": "public", "version": "10"})

	q, s := sysmodel.QuantityFlow, sysmodel.SignalFlow
	m.Connect(plant.CompInValve, "pipe", plant.CompTank, "in_pipe", q)
	m.Connect(plant.CompOutValve, "pipe", plant.CompTank, "out_pipe", q)
	m.Connect(plant.CompLevelSensor, "measure", plant.CompTank, "surface", q)
	m.Connect(plant.CompLevelSensor, "reading", plant.CompController, "reading", s)
	m.Connect(plant.CompController, "cmd_in", plant.CompInValveCtl, "ctl", s)
	m.Connect(plant.CompController, "cmd_out", plant.CompOutValveCtl, "ctl", s)
	m.Connect(plant.CompInValveCtl, "cmd", plant.CompInValve, "cmd", s)
	m.Connect(plant.CompOutValveCtl, "cmd", plant.CompOutValve, "cmd", s)
	m.Connect(plant.CompController, "alert", plant.CompHMI, "alert", s)
	m.Connect(plant.CompEWS, "cfg_in", plant.CompInValveCtl, "cfg", s)
	m.Connect(plant.CompEWS, "cfg_out", plant.CompOutValveCtl, "cfg", s)
	m.Connect(plant.CompEWS, "mgmt", plant.CompHMI, "mgmt", s)

	m.AddRequirement(sysmodel.Requirement{
		ID: "R1", Description: "the water tank should not overflow",
		Formula: "G !state(tank,overflow)", Severity: "H",
	})
	m.AddRequirement(sysmodel.Requirement{
		ID: "R2", Description: "an alert must be sent to the operator in case of overflow",
		Formula: "G (state(tank,overflow) -> F alerted(operator))", Severity: "H",
	})
	return m
}

// HierarchicalModel is the Fig. 4 variant: the Engineering Workstation is
// a composite of e-mail client -> browser -> OS (the spam-link -> malware
// -> infection chain), with the outer configuration/management ports bound
// to the OS.
func HierarchicalModel() *sysmodel.Model {
	m := Model()
	ews, _ := m.Component(plant.CompEWS)

	inner := sysmodel.NewModel("ews-inner")
	inner.MustAddComponent(&sysmodel.Component{ID: "email_client", Type: TypeEmail,
		Attrs: map[string]string{"exposure": "public"}})
	inner.MustAddComponent(&sysmodel.Component{ID: "browser", Type: TypeBrowser,
		Attrs: map[string]string{"exposure": "public", "version": "11.2"}})
	inner.MustAddComponent(&sysmodel.Component{ID: "os", Type: TypeOS, Attrs: map[string]string{"version": "10"}})
	inner.Connect("email_client", "link", "browser", "link", sysmodel.SignalFlow)
	inner.Connect("browser", "download", "os", "download", sysmodel.SignalFlow)

	ews.Sub = inner
	ews.Bindings = map[string]sysmodel.PortRef{
		"cfg_in":  {Component: "os", Port: "cfg_in"},
		"cfg_out": {Component: "os", Port: "cfg_out"},
		"mgmt":    {Component: "os", Port: "mgmt"},
	}
	return m
}

// Behaviors returns the EPA behaviour library of the case study. The
// modeling choices follow the paper's analysis results (Table II):
//
//   - valves: stuck-at faults emit wrong-flow values on the pipe; any
//     command error yields a wrong flow;
//   - valve controllers: attacker configuration (compromise on cfg) or a
//     bad_command fault yields wrong actuator commands;
//   - sensor: loss of signal emits omission on the reading;
//   - tank controller: reading errors corrupt both valve commands; a
//     missing or wrong reading may lose the alert;
//   - HMI: no_signal or a compromised management channel loses alerts;
//   - workstation (or its OS after refinement): compromise emits
//     attacker-controlled traffic on every output;
//   - tank: measurements reflect the true level, so level deviations do
//     not propagate as data errors through the correcting control loop
//     (this is what keeps F1 alone non-hazardous, matching row S3).
func Behaviors(types *sysmodel.TypeLibrary) *epa.BehaviorLibrary {
	lib := epa.NewBehaviorLibrary(types)
	valueErr := epa.StateOf(epa.ErrValue)
	omission := epa.StateOf(epa.ErrOmission)
	compromise := epa.StateOf(epa.ErrCompromise)
	anyCmdErr := epa.StateOf(epa.ErrValue, epa.ErrOmission, epa.ErrCompromise)

	lib.MustRegister(&epa.TypeBehavior{Type: TypeTank})
	lib.MustRegister(&epa.TypeBehavior{
		Type: TypeValve,
		Effects: []epa.FaultEffect{
			{Fault: plant.FaultStuckOpen, Port: "pipe", Emit: valueErr},
			{Fault: plant.FaultStuckClosed, Port: "pipe", Emit: valueErr},
		},
		Transfers: []epa.TransferRule{
			{From: "cmd", Match: anyCmdErr, To: "pipe", Emit: valueErr},
		},
	})
	lib.MustRegister(&epa.TypeBehavior{
		Type: TypeValveCtl,
		Effects: []epa.FaultEffect{
			{Fault: plant.FaultBadCommand, Port: "cmd", Emit: valueErr},
		},
		Transfers: []epa.TransferRule{
			{From: "ctl", Match: valueErr, To: "cmd", Emit: valueErr},
			{From: "ctl", Match: omission, To: "cmd", Emit: omission},
			{From: "cfg", Match: compromise, To: "cmd",
				Emit: epa.StateOf(epa.ErrValue, epa.ErrCompromise)},
		},
	})
	lib.MustRegister(&epa.TypeBehavior{
		Type: TypeSensor,
		Effects: []epa.FaultEffect{
			{Fault: plant.FaultNoSignal, Port: "reading", Emit: omission},
		},
		Transfers: []epa.TransferRule{
			{From: "measure", Match: valueErr, To: "reading", Emit: valueErr},
		},
	})
	lib.MustRegister(&epa.TypeBehavior{
		Type: TypeController,
		Effects: []epa.FaultEffect{
			{Fault: "crash", Emit: omission},
		},
		Transfers: []epa.TransferRule{
			{From: "reading", Match: valueErr, To: "cmd_in", Emit: valueErr},
			{From: "reading", Match: valueErr, To: "cmd_out", Emit: valueErr},
			{From: "reading", Match: omission, To: "cmd_in", Emit: omission},
			{From: "reading", Match: omission, To: "cmd_out", Emit: omission},
			{From: "reading", Match: epa.StateOf(epa.ErrValue, epa.ErrOmission),
				To: "alert", Emit: omission},
		},
	})
	lib.MustRegister(&epa.TypeBehavior{
		Type: TypeHMI,
		Effects: []epa.FaultEffect{
			{Fault: plant.FaultNoSignal, Port: "display", Emit: omission},
		},
		Transfers: []epa.TransferRule{
			{From: "alert", Match: omission, To: "display", Emit: omission},
			{From: "alert", Match: valueErr, To: "display", Emit: valueErr},
			{From: "mgmt", Match: compromise, To: "display", Emit: omission},
		},
	})
	lib.MustRegister(&epa.TypeBehavior{
		Type: TypeWS,
		Effects: []epa.FaultEffect{
			{Fault: plant.FaultCompromised, Emit: compromise},
		},
	})
	// Inner workstation chain: a compromised stage compromises the next.
	lib.MustRegister(&epa.TypeBehavior{
		Type: TypeEmail,
		Effects: []epa.FaultEffect{
			{Fault: plant.FaultCompromised, Port: "link", Emit: compromise},
		},
	})
	lib.MustRegister(&epa.TypeBehavior{
		Type: TypeBrowser,
		Effects: []epa.FaultEffect{
			{Fault: plant.FaultCompromised, Port: "download", Emit: compromise},
		},
		Transfers: []epa.TransferRule{
			{From: "link", Match: compromise, To: "download", Emit: compromise},
		},
	})
	lib.MustRegister(&epa.TypeBehavior{
		Type: TypeOS,
		Effects: []epa.FaultEffect{
			{Fault: plant.FaultCompromised, Emit: compromise},
		},
		Transfers: []epa.TransferRule{
			{From: "download", Match: compromise, To: "cfg_in", Emit: compromise},
			{From: "download", Match: compromise, To: "cfg_out", Emit: compromise},
			{From: "download", Match: compromise, To: "mgmt", Emit: compromise},
		},
	})
	return lib
}

// overflowCondition is the qualitative R1-violation condition: the tank
// can overflow when the draining capability is lost — the output valve is
// stuck closed, its command channel carries wrong or attacker-controlled
// values, or the controller is blind (missing level reading while the
// inflow may run).
func overflowCondition() hazard.Condition {
	return hazard.Any(
		hazard.Fault(plant.CompOutValve, plant.FaultStuckClosed),
		hazard.Port(plant.CompOutValve, "cmd", epa.ErrValue),
		hazard.Port(plant.CompOutValve, "cmd", epa.ErrCompromise),
		hazard.Port(plant.CompController, "reading", epa.ErrOmission),
	)
}

// alertLostCondition holds when operator alerts can be lost: the HMI
// display carries an omission.
func alertLostCondition() hazard.Condition {
	return hazard.Port(plant.CompHMI, "display", epa.ErrOmission)
}

// Requirements returns R1 and R2 with their violation conditions:
// R1 is violated when overflow is reachable; R2 when overflow is reachable
// and the alert can be lost.
func Requirements() []hazard.Requirement {
	return []hazard.Requirement{
		{
			ID:          "R1",
			Description: "the water tank should not overflow",
			Severity:    qual.High,
			Condition:   overflowCondition(),
		},
		{
			ID:          "R2",
			Description: "an alert must be sent to the operator in case of overflow",
			Severity:    qual.High,
			Condition:   hazard.All(overflowCondition(), alertLostCondition()),
		},
	}
}

// PaperCandidates returns the paper's candidate fault set F1..F4 in table
// order. These are the mutations Table II is computed over.
func PaperCandidates() []faults.Mutation {
	return []faults.Mutation{
		{Activation: epa.Activation{Component: plant.CompInValve, Fault: plant.FaultStuckOpen},
			Sources: []string{"fault_mode"}, Likelihood: qual.Low}, // F1
		{Activation: epa.Activation{Component: plant.CompOutValve, Fault: plant.FaultStuckClosed},
			Sources: []string{"fault_mode"}, Likelihood: qual.Low}, // F2
		{Activation: epa.Activation{Component: plant.CompHMI, Fault: plant.FaultNoSignal},
			Sources: []string{"fault_mode"}, Likelihood: qual.Low}, // F3
		{Activation: epa.Activation{Component: plant.CompEWS, Fault: plant.FaultCompromised},
			Sources: []string{"T-1566", "T-1189"}, Likelihood: qual.Medium}, // F4
	}
}

// FaultLabels maps the paper's F1..F4 labels to activations.
var FaultLabels = map[string]epa.Activation{
	"F1": {Component: plant.CompInValve, Fault: plant.FaultStuckOpen},
	"F2": {Component: plant.CompOutValve, Fault: plant.FaultStuckClosed},
	"F3": {Component: plant.CompHMI, Fault: plant.FaultNoSignal},
	"F4": {Component: plant.CompEWS, Fault: plant.FaultCompromised},
}

// Engine builds a ready EPA engine over the flat model.
func Engine() (*epa.Engine, error) {
	types := Types()
	return epa.NewEngine(Model(), Behaviors(types))
}
